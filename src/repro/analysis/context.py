"""Per-module parse state shared by every rule during one walk."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.analysis.finding import Finding

# `# repro: allow[rule-a, rule-b] -- why this is intentional`
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[a-z0-9_*,\s-]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)
# fixtures and out-of-tree files can pin their logical module name
_MODULE_OVERRIDE_RE = re.compile(r"#\s*analysis-module:\s*(?P<module>[\w.]+)")


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment."""

    line: int  # line the comment sits on
    rules: Tuple[str, ...]  # rule ids, or ("*",) for a blanket waiver
    reason: str  # empty string == unjustified (itself a finding)
    applies_to: int  # line the waiver covers (next line for bare comments)

    def covers(self, rule: str, line: int) -> bool:
        return line == self.applies_to and ("*" in self.rules or rule in self.rules)


def _derive_module(path: Path) -> str:
    """Dotted module name from a path like ``.../src/repro/ftl/gc.py``."""
    parts = list(path.parts)
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "repro":
            dotted = parts[anchor:]
            dotted[-1] = Path(dotted[-1]).stem
            if dotted[-1] == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted)
    return ""


def _attach_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.repro_parent = node  # type: ignore[attr-defined]


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one parsed source file."""

    path: Path
    relpath: str  # POSIX-style path reported in findings
    module: str  # dotted name, "" when underivable
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "ModuleContext":
        """Parse ``path``; raises SyntaxError for the runner to report."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        _attach_parents(tree)
        lines = source.splitlines()
        module = _derive_module(path)
        for probe in lines[:5]:
            override = _MODULE_OVERRIDE_RE.search(probe)
            if override:
                module = override.group("module")
                break
        ctx = cls(
            path=path,
            relpath=relpath,
            module=module,
            source=source,
            tree=tree,
            lines=lines,
        )
        ctx.suppressions = list(ctx._scan_suppressions())
        return ctx

    # -- suppression comments ------------------------------------------------

    def _scan_suppressions(self) -> Iterator[Suppression]:
        for idx, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                sorted(r.strip() for r in match.group("rules").split(",") if r.strip())
            )
            reason = (match.group("reason") or "").strip()
            # a comment-only line waives the *next* line; trailing comments
            # waive their own line
            bare = text.strip().startswith("#")
            yield Suppression(
                line=idx,
                rules=rules,
                reason=reason,
                applies_to=idx + 1 if bare else idx,
            )

    def suppression_for(self, rule: str, line: int) -> Optional[Suppression]:
        for suppression in self.suppressions:
            if suppression.covers(rule, line):
                return suppression
        return None

    # -- helpers for rules ---------------------------------------------------

    @property
    def package(self) -> str:
        """Second-level package (``ftl`` for ``repro.ftl.gc``), "" otherwise."""
        parts = self.module.split(".")
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return ""

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.relpath,
            line=lineno,
            col=col + 1,
            message=message,
            line_text=self.line_text(lineno),
        )


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "repro_parent", None)


def dotted_source(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain ("a.b.c")."""
    parts: List[str] = []
    current: Optional[ast.AST] = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


__all__ = [
    "ModuleContext",
    "Suppression",
    "dotted_source",
    "parent_of",
]
