"""Text and JSON reporters over an analysis result."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.finding import Finding, FindingStatus

REPORT_VERSION = 1


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(findings, key=Finding.sort_key)


def summarize(findings: List[Finding], files_scanned: int) -> Dict[str, int]:
    by_status = {status: 0 for status in FindingStatus}
    for finding in findings:
        by_status[finding.status] += 1
    return {
        "files_scanned": files_scanned,
        "total": len(findings),
        "new": by_status[FindingStatus.NEW],
        "suppressed": by_status[FindingStatus.SUPPRESSED],
        "baselined": by_status[FindingStatus.BASELINED],
    }


def render_text(
    findings: List[Finding], files_scanned: int, verbose: bool = False
) -> str:
    lines: List[str] = []
    for finding in _sorted(findings):
        if finding.status is FindingStatus.NEW:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule}: {finding.message}"
            )
        elif verbose:
            note = f" ({finding.justification})" if finding.justification else ""
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule}: [{finding.status.value}]{note}"
            )
    stats = summarize(findings, files_scanned)
    lines.append(
        f"{stats['files_scanned']} files scanned: {stats['new']} finding(s), "
        f"{stats['suppressed']} suppressed, {stats['baselined']} baselined"
    )
    return "\n".join(lines)


def render_json(findings: List[Finding], files_scanned: int) -> str:
    payload: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "summary": summarize(findings, files_scanned),
        "findings": [finding.to_dict() for finding in _sorted(findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(findings: List[Finding], files_scanned: int) -> str:
    """SARIF 2.1.0 for GitHub code scanning.

    Only NEW findings become results (that is the gate CI enforces);
    suppressed and baselined findings are carried as suppressed results so
    the code-scanning UI shows them as dismissed rather than resurrecting
    them on every push. Deterministic: rule metadata comes from the sorted
    registry, results from the canonical finding sort.
    """
    from repro.analysis.registry import all_rules

    rules_meta = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "properties": {"family": rule.family},
        }
        for rule in all_rules()
    ]
    rule_index = {meta["id"]: i for i, meta in enumerate(rules_meta)}

    results: List[Dict[str, Any]] = []
    for finding in _sorted(findings):
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error" if finding.status is FindingStatus.NEW else "note",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        if finding.status is not FindingStatus.NEW:
            result["suppressions"] = [
                {
                    "kind": (
                        "inSource"
                        if finding.status is FindingStatus.SUPPRESSED
                        else "external"
                    ),
                    "justification": finding.justification
                    or f"{finding.status.value} finding",
                }
            ]
        results.append(result)

    payload: Dict[str, Any] = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": str(REPORT_VERSION),
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules_meta,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "properties": {"files_scanned": files_scanned},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


__all__ = [
    "REPORT_VERSION",
    "render_json",
    "render_sarif",
    "render_text",
    "summarize",
]
