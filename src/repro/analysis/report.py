"""Text and JSON reporters over an analysis result."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.finding import Finding, FindingStatus

REPORT_VERSION = 1


def _sorted(findings: List[Finding]) -> List[Finding]:
    return sorted(findings, key=Finding.sort_key)


def summarize(findings: List[Finding], files_scanned: int) -> Dict[str, int]:
    by_status = {status: 0 for status in FindingStatus}
    for finding in findings:
        by_status[finding.status] += 1
    return {
        "files_scanned": files_scanned,
        "total": len(findings),
        "new": by_status[FindingStatus.NEW],
        "suppressed": by_status[FindingStatus.SUPPRESSED],
        "baselined": by_status[FindingStatus.BASELINED],
    }


def render_text(
    findings: List[Finding], files_scanned: int, verbose: bool = False
) -> str:
    lines: List[str] = []
    for finding in _sorted(findings):
        if finding.status is FindingStatus.NEW:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule}: {finding.message}"
            )
        elif verbose:
            note = f" ({finding.justification})" if finding.justification else ""
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule}: [{finding.status.value}]{note}"
            )
    stats = summarize(findings, files_scanned)
    lines.append(
        f"{stats['files_scanned']} files scanned: {stats['new']} finding(s), "
        f"{stats['suppressed']} suppressed, {stats['baselined']} baselined"
    )
    return "\n".join(lines)


def render_json(findings: List[Finding], files_scanned: int) -> str:
    payload: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "summary": summarize(findings, files_scanned),
        "findings": [finding.to_dict() for finding in _sorted(findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


__all__ = ["REPORT_VERSION", "render_json", "render_text", "summarize"]
