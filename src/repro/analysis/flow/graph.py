"""`repro lint --graph`: export the computed call graph + layer DAG.

The export is a single deterministic JSON document (sorted keys, sorted
lists) so CI can diff two runs byte-for-byte and archive the artifact:

- ``modules``: every scanned module and what it imports;
- ``call_graph``: resolved callee candidates per function (the edges the
  taint fixpoint actually propagated along);
- ``layers``: the observed `repro.<pkg> -> repro.<pkg>` edges with use
  counts, the documented ``LAYER_ALLOWED`` DAG, and the two drift sets —
  ``undocumented`` (observed but not granted: `sec-layering` findings) and
  ``unused_grants`` (granted but never observed: `flow-layer-drift`
  findings).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Set

from repro.analysis.flow.symbols import ProjectIndex
from repro.analysis.rules.security import LAYER_ALLOWED

GRAPH_VERSION = 1


def build_graph(index: ProjectIndex) -> Dict[str, Any]:
    call_graph: Dict[str, List[str]] = {}
    for fn in index.sorted_functions():
        callees: Set[str] = set()
        for call in index.iter_calls(fn):
            callees.update(index.resolve_call(fn, call))
        if callees:
            call_graph[fn.qname] = sorted(callees)

    present = {
        info.package for info in index.modules.values() if info.package
    }
    observed = [
        {"from": pkg, "to": dep, "imports": count}
        for (pkg, dep), count in sorted(index.package_edges.items())
    ]
    documented = {
        pkg: sorted(deps) for pkg, deps in sorted(LAYER_ALLOWED.items())
    }
    undocumented = sorted(
        f"{pkg} -> {dep}"
        for (pkg, dep) in index.package_edges
        if pkg in LAYER_ALLOWED and dep not in LAYER_ALLOWED[pkg]
    )
    unused_grants = sorted(
        f"{pkg} -> {dep}"
        for pkg, deps in LAYER_ALLOWED.items()
        if pkg in present
        for dep in deps
        if dep in present and (pkg, dep) not in index.package_edges
    )
    return {
        "version": GRAPH_VERSION,
        "modules": {key: list(imports) for key, imports in sorted(index.module_imports.items())},
        "call_graph": call_graph,
        "layers": {
            "observed": observed,
            "documented": documented,
            "undocumented": undocumented,
            "unused_grants": unused_grants,
        },
    }


def render_graph(index: ProjectIndex) -> str:
    return json.dumps(build_graph(index), indent=2, sort_keys=True) + "\n"


__all__ = ["GRAPH_VERSION", "build_graph", "render_graph"]
