"""The interprocedural rule families built on the flow fixpoint.

Four whole-program rules, all anchored back to concrete file/line findings
so waivers and the baseline work unchanged:

- ``flow-secret-escape``: a value *provably derived* from key material
  (taint fixpoint, not name matching) reaches a telemetry sink — directly
  or through a call whose summary says the parameter escapes;
- ``race-await-atomicity``: an async method reads shared ``self`` state
  before an ``await`` and writes it after — an interleaving window where
  another task observes/mutates stale state;
- ``flow-exception-containment``: a broad except inside the enclave
  dispatch packages must re-raise or (transitively) reach the §4.5
  ThrowOutTEE abort path, otherwise it swallows a detected attack;
- ``flow-layer-drift``: the documented ``LAYER_ALLOWED`` DAG is diffed
  against the *observed* import graph; a granted edge no import uses is
  stale trust that silently widens the TCB.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.context import dotted_source
from repro.analysis.finding import Finding
from repro.analysis.registry import ProjectRule, register
from repro.analysis.flow.summaries import (
    ABORT_CALL_NAMES,
    FlowAnalysis,
    iter_source_events,
)
from repro.analysis.flow.symbols import FunctionInfo, ProjectIndex
from repro.analysis.rules.security import LAYER_ALLOWED, _secret_names


def _describe_origins(origins: Iterator[str]) -> str:
    sources = sorted(o[len("source:"):] for o in origins if o.startswith("source:"))
    return ", ".join(sources[:3])


@register
class FlowSecretEscapeRule(ProjectRule):
    """Taint-tracked key material must never reach a telemetry sink."""

    id = "flow-secret-escape"
    family = "flow"
    summary = "value derived from key material reaches a telemetry sink"
    rationale = (
        "§4.4/§7: `sec-telemetry-leak` only matches key-shaped *names*; a "
        "secret renamed once, returned from a helper, or passed through a "
        "parameter is invisible to it. The taint fixpoint follows the value "
        "through assignments, calls, containers and returns, so the finding "
        "is a real reachability claim: this expression's bytes derive from "
        "derive_kek/unwrap_key/keystream output."
    )

    def check_project(self, project: Any) -> Iterator[Finding]:
        flow: FlowAnalysis = project.flow
        for fn, event in iter_source_events(flow):
            if " via " not in event.sink and self._name_heuristic_covers(event.node):
                # sec-telemetry-leak already reports this exact sink; one
                # finding per leak keeps reports and fixtures unambiguous
                continue
            origins = _describe_origins(iter(event.origins))
            yield fn.ctx.finding(
                self.id,
                event.node,
                f"`{event.label}` is derived from key material ({origins}) "
                f"and reaches telemetry sink {event.sink}; seal or drop the "
                "value before it leaves the TCB",
            )

    @staticmethod
    def _name_heuristic_covers(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            for _name in _secret_names(arg):
                return True
        return False


# context-manager expressions that make the awaited window atomic
def _is_lock_guard(item: ast.withitem) -> bool:
    dotted = dotted_source(item.context_expr)
    if not dotted and isinstance(item.context_expr, ast.Call):
        dotted = dotted_source(item.context_expr.func)
    return "lock" in dotted.lower() or "mutex" in dotted.lower()


class _AsyncAccessScan:
    """Linear pre-order positions of self-attr reads/writes and awaits.

    Deliberately *not* loop-carried: a read that only precedes the await on
    a later iteration is a much weaker signal, and modeling it would flag
    every single-driver pump loop in the codebase. The linear model catches
    the real hazard shape: check state, await, then write state that the
    check justified.
    """

    def __init__(self, self_name: str) -> None:
        self.self_name = self_name
        self.pos = 0
        self.reads: Dict[str, int] = {}  # attr -> earliest read position
        self.writes: Dict[str, List[Tuple[int, ast.AST]]] = {}
        self.awaits: List[int] = []

    def scan(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt, locked=False)

    def _visit(self, node: ast.AST, locked: bool) -> None:
        self.pos += 1
        pos = self.pos
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scope: different task context
        if isinstance(node, ast.Await):
            if not locked:
                self.awaits.append(pos)
        if isinstance(node, ast.AsyncWith) and any(
            _is_lock_guard(item) for item in node.items
        ):
            for item in node.items:
                self._visit(item.context_expr, locked)
            for sub in node.body:
                self._visit(sub, locked=True)
            return
        if isinstance(node, ast.Attribute):
            self._record(node, pos, locked)
        if isinstance(node, ast.AugAssign):
            # `self.x += 1` reads and writes at (essentially) one position
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self.self_name
                and not locked
            ):
                self.reads.setdefault(target.attr, pos)
        for child in ast.iter_child_nodes(node):
            self._visit(child, locked)

    def _record(self, node: ast.Attribute, pos: int, locked: bool) -> None:
        if locked:
            return
        if not (
            isinstance(node.value, ast.Name) and node.value.id == self.self_name
        ):
            return
        if isinstance(node.ctx, ast.Store):
            self.writes.setdefault(node.attr, []).append((pos, node))
        elif isinstance(node.ctx, ast.Load):
            self.reads.setdefault(node.attr, pos)


@register
class RaceAwaitAtomicityRule(ProjectRule):
    """Shared state checked before an ``await`` must not be written after."""

    id = "race-await-atomicity"
    family = "flow"
    summary = "self attribute read before an `await`, written after it"
    rationale = (
        "The serve front-end is deterministic *because* all shared state "
        "changes happen atomically between awaits (the single FIFO pump). "
        "A method that reads `self.x`, awaits, then writes `self.x` has an "
        "interleaving window: another task can run at the await and act on "
        "the stale value. Capture the state into locals and null the "
        "attributes *before* awaiting, or hold a lock across the window."
    )

    def check_project(self, project: Any) -> Iterator[Finding]:
        index: ProjectIndex = project.index
        for fn in index.sorted_functions():
            if not isinstance(fn.node, ast.AsyncFunctionDef):
                continue
            self_name = fn.self_name
            if self_name is None:
                continue
            scan = _AsyncAccessScan(self_name)
            scan.scan(fn.node.body)
            if not scan.awaits:
                continue
            for attr in sorted(scan.writes):
                read_pos = scan.reads.get(attr)
                if read_pos is None:
                    continue
                for write_pos, node in scan.writes[attr]:
                    hole = any(read_pos < a < write_pos for a in scan.awaits)
                    if hole:
                        yield fn.ctx.finding(
                            self.id,
                            node,
                            f"`{self_name}.{attr}` is read before an `await` "
                            f"and written after it in `{fn.qname}`; another "
                            "task can interleave at the await and see/mutate "
                            "stale state — move the writes before the await "
                            "or hold a lock across the window",
                        )
                        break  # one finding per attribute per function


# packages whose dispatch paths sit inside / in front of the enclave
_CONTAINMENT_PREFIXES: Tuple[str, ...] = (
    "repro.core.",
    "repro.host.",
    "repro.serve.",
)


def _broad_handler(handler: ast.ExceptHandler) -> Optional[str]:
    type_node = handler.type
    if type_node is None:
        return "bare `except:`"
    names = (
        [dotted_source(e) for e in type_node.elts]
        if isinstance(type_node, ast.Tuple)
        else [dotted_source(type_node)]
    )
    for name in names:
        if name in ("Exception", "BaseException"):
            return f"`except {name}`"
    return None


@register
class FlowExceptionContainmentRule(ProjectRule):
    """Broad excepts in enclave dispatch must reach the §4.5 abort path."""

    id = "flow-exception-containment"
    family = "flow"
    summary = "broad except in enclave dispatch that never reaches ThrowOutTEE"
    rationale = (
        "§4.5: any in-enclave fault must surface as ThrowOutTEE/TeeAbort so "
        "the host can destroy the enclave; `sec-broad-except` flags the "
        "*syntax*, this rule checks the *semantics* — a broad handler is "
        "acceptable exactly when every path through it re-raises or calls "
        "something the call-graph fixpoint proves reaches the abort helper."
    )

    def check_project(self, project: Any) -> Iterator[Finding]:
        index: ProjectIndex = project.index
        flow: FlowAnalysis = project.flow
        for fn in index.sorted_functions():
            if not fn.module.startswith(_CONTAINMENT_PREFIXES):
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                broad = _broad_handler(node)
                if broad is None:
                    continue
                if self._handler_contained(node, fn, index, flow):
                    continue
                yield fn.ctx.finding(
                    self.id,
                    node,
                    f"{broad} in `{fn.qname}` swallows the fault: no path "
                    "through the handler re-raises or reaches the §4.5 "
                    "abort helper (throw_out_tee / raise TeeAbort)",
                )

    @staticmethod
    def _handler_contained(
        handler: ast.ExceptHandler,
        fn: FunctionInfo,
        index: ProjectIndex,
        flow: FlowAnalysis,
    ) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Call):
                leaf = dotted_source(sub.func).split(".")[-1]
                if leaf in ABORT_CALL_NAMES:
                    return True
                for qname in index.resolve_call(fn, sub):
                    summary = flow.summaries.get(qname)
                    if summary is not None and summary.reaches_abort:
                        return True
        return False


@register
class FlowLayerDriftRule(ProjectRule):
    """Documented layer grants must match the observed import graph."""

    id = "flow-layer-drift"
    family = "flow"
    summary = "LAYER_ALLOWED grants an import edge no module uses"
    rationale = (
        "The layering DAG is the architecture document the SoK small-TCB "
        "argument leans on. `sec-layering` catches imports *outside* the "
        "grants; this rule catches the dual failure — a grant the code no "
        "longer exercises. Stale grants are pre-approved attack surface: "
        "the next import along that edge sails through review silently."
    )

    def check_project(self, project: Any) -> Iterator[Finding]:
        index: ProjectIndex = project.index
        present: Set[str] = set()
        anchors: Dict[str, str] = {}  # package -> first module key (sorted)
        for key in sorted(index.modules):
            pkg = index.modules[key].package
            if not pkg:
                continue
            present.add(pkg)
            anchors.setdefault(pkg, key)
        observed = set(index.package_edges)
        for pkg in sorted(LAYER_ALLOWED):
            # only judge edges where both endpoints are in the scanned tree:
            # a partial scan (one fixture, one subpackage) proves nothing
            if pkg not in present:
                continue
            for dep in sorted(LAYER_ALLOWED[pkg]):
                if dep not in present or (pkg, dep) in observed:
                    continue
                ctx = index.modules[anchors[pkg]].ctx
                yield ctx.finding(
                    self.id,
                    ctx.tree,
                    f"LAYER_ALLOWED grants repro.{pkg} -> repro.{dep} but no "
                    "import in the scanned tree uses the edge; prune the "
                    "stale grant (architecture drift)",
                )


__all__ = [
    "FlowExceptionContainmentRule",
    "FlowLayerDriftRule",
    "FlowSecretEscapeRule",
    "RaceAwaitAtomicityRule",
]
