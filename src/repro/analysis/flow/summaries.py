"""Per-function dataflow summaries and the project-wide taint fixpoint.

The flow rules need to know, for every function in the project:

- does calling it *produce* key material (``returns_secret``) — e.g.
  ``derive_kek`` intrinsically, or any helper that returns a value derived
  from one;
- which parameters flow through to the return value (``taint_through``),
  so a caller's secret stays tracked across the call;
- which parameters escape into a telemetry sink inside the callee or
  anything it calls (``params_to_sink``) — the interprocedural half of
  ``flow-secret-escape``;
- whether the function (transitively) reaches the §4.5 abort path
  (``reaches_abort``) — the interprocedural half of
  ``flow-exception-containment``.

Summaries are computed by a monotone fixpoint over the call graph: each
pass re-evaluates every function body against the current summaries of its
callees and stops when nothing grows. Within a body the evaluator is a
small abstract interpreter over an environment mapping variable names (and
``self.attr`` paths) to *origin sets* — ``param:<i>`` for values derived
from a parameter, ``source:<what>`` for values derived from real key
material. Class attributes assigned a source-tainted value anywhere become
secret attributes of that class, seeding every other method (this is how a
key renamed into ``self._seal_key`` once stays tracked everywhere).

Declassification: in this codebase ciphertext is always produced by XOR
against a fresh keystream (counter-mode MEE, Trivium, the serve channel),
and MAC tags / hash digests are public by construction. The evaluator
therefore stops taint at ``^`` and at ``hashlib``/``hmac``/``digest``
boundaries — the sealed envelope is the *point* of the TCB, not a leak.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.context import dotted_source
from repro.analysis.flow.symbols import FunctionInfo, FunctionNode, ProjectIndex
from repro.analysis.rules.security import KEY_NAMES

Origins = FrozenSet[str]
_EMPTY: Origins = frozenset()

# -- what counts as a secret ------------------------------------------------

# calls that *mint* key material, by resolved qualified name
SECRET_SOURCE_QNAMES: FrozenSet[str] = frozenset(
    {
        "repro.core.key_management.derive_kek",
        "repro.core.key_management.unwrap_key",
        "repro.core.key_management._stream",
        "repro.serve.session._keystream",
    }
)
# constructing one of these wraps a key: the object itself is secret-bearing
SECRET_CLASS_QNAMES: FrozenSet[str] = frozenset(
    {
        "repro.crypto.aes.AES128",
        "repro.crypto.trivium.Trivium",
        "repro.crypto.trivium_fast.TriviumFast",
    }
)
# methods that emit keystream/plaintext from a secret-bearing receiver
SECRET_METHODS: FrozenSet[str] = frozenset({"keystream"})
# parameters with these names are key material by declaration
SECRET_PARAM_NAMES: FrozenSet[str] = KEY_NAMES | frozenset(
    {"kek", "keystream", "device_secret", "data_key"}
)

# taint survives `.hex()` / `.decode()` style re-encodings of the same bytes
_PROPAGATING_METHODS: FrozenSet[str] = frozenset(
    {"hex", "decode", "encode", "copy", "keystream", "to_bytes", "tobytes"}
)
# calls through these never launder a usable secret out (lengths, type
# checks, MACs/digests — public by construction)
_STOPPER_ROOTS: FrozenSet[str] = frozenset(
    {"len", "isinstance", "issubclass", "bool", "type", "id", "hash",
     "range", "enumerate", "hashlib", "hmac", "callable", "getattr"}
)
_STOPPER_METHODS: FrozenSet[str] = frozenset(
    {"digest", "hexdigest", "verify", "compare_digest"}
)

# the §4.5 abort surface: ThrowOutTEE and the per-layer abort helpers
ABORT_CALL_NAMES: FrozenSet[str] = frozenset({"throw_out_tee"})
ABORT_EXC_NAMES: FrozenSet[str] = frozenset({"TeeAbort"})


@dataclass(frozen=True)
class SinkEvent:
    """A tainted value reaching a telemetry sink (directly or via a call)."""

    node: ast.AST  # call node to anchor the finding / summary on
    sink: str  # human description ("print()", "via repro.x.y param `v`")
    origins: Origins
    label: str  # best-effort name of the leaking expression


@dataclass
class FunctionSummary:
    """The caller-visible dataflow behaviour of one function."""

    returns_secret: bool = False
    taint_through: FrozenSet[int] = _EMPTY  # type: ignore[assignment]
    params_to_sink: Tuple[Tuple[int, str], ...] = ()
    reaches_abort: bool = False

    def sink_params(self) -> Dict[int, str]:
        return dict(self.params_to_sink)


def _is_telemetry_sink(func: ast.expr) -> Optional[str]:
    # one definition of "telemetry sink" for the whole suite
    from repro.analysis.rules.security import _is_telemetry_sink as impl

    return impl(func)


def _label_of(expr: ast.expr) -> str:
    dotted = dotted_source(expr)
    if dotted:
        return dotted
    if isinstance(expr, ast.Call):
        inner = dotted_source(expr.func)
        return f"{inner}(...)" if inner else "<call>"
    return f"<{type(expr).__name__}>"


class _Evaluator:
    """One pass over one function body against the current summaries."""

    def __init__(
        self,
        fn: FunctionInfo,
        index: ProjectIndex,
        summaries: Dict[str, FunctionSummary],
        secret_attrs: Dict[str, Set[str]],
    ) -> None:
        self.fn = fn
        self.index = index
        self.summaries = summaries
        self.secret_attrs = secret_attrs
        self.env: Dict[str, Origins] = {}
        self.events: List[SinkEvent] = []
        self.return_origins: Origins = _EMPTY
        self.attr_updates: Set[Tuple[str, str]] = set()
        self._seed_params()

    # -- seeding -------------------------------------------------------------

    def _seed_params(self) -> None:
        offset = 1 if self.fn.is_method else 0
        for idx, name in enumerate(self.fn.params):
            origins: Set[str] = set()
            if idx >= offset:
                origins.add(f"param:{idx}")
            if name in SECRET_PARAM_NAMES:
                origins.add(f"source:param `{name}`")
            if origins:
                self.env[name] = frozenset(origins)

    def _self_attr_origins(self, dotted: str) -> Origins:
        """Seed ``self.attr`` reads from the class's known secret attrs."""
        self_name = self.fn.self_name
        cls = self.fn.class_qname
        if self_name is None or cls is None:
            return _EMPTY
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == self_name:
            if parts[1] in self.secret_attrs.get(cls, set()):
                return frozenset({f"source:attr `self.{parts[1]}`"})
        return _EMPTY

    # -- the pass ------------------------------------------------------------

    def run(self) -> None:
        for _ in range(8):  # loop-carried taint converges in a few passes
            before = dict(self.env)
            self.events = []
            self.return_origins = _EMPTY
            for stmt in self.fn.node.body:
                self._exec(stmt)
            if self.env == before:
                break

    # -- statements ----------------------------------------------------------

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            origins = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, origins)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            origins = self._eval(stmt.value) | self._read_target(stmt.target)
            self._bind(stmt.target, origins)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_origins = self.return_origins | self._eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self._eval(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self._exec(sub)
        elif isinstance(stmt, (ast.While,)):
            self._eval(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self._exec(sub)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._eval(stmt.iter))
            for sub in [*stmt.body, *stmt.orelse]:
                self._exec(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, origins)
            for sub in stmt.body:
                self._exec(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._exec(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._exec(sub)
            for sub in [*stmt.orelse, *stmt.finalbody]:
                self._exec(sub)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                key = dotted_source(target)
                if key:
                    self.env.pop(key, None)
        # nested defs/classes are out of scope for the summary

    def _read_target(self, target: ast.expr) -> Origins:
        key = dotted_source(target)
        if key:
            return self.env.get(key, _EMPTY) | self._self_attr_origins(key)
        return _EMPTY

    def _bind(self, target: ast.expr, origins: Origins) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, origins)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, origins)
            return
        if isinstance(target, ast.Subscript):
            # container mutation taints the container itself
            target = target.value
        key = dotted_source(target)
        if not key:
            return
        merged = self.env.get(key, _EMPTY) | origins
        if merged:
            self.env[key] = merged
        self._note_secret_attr(key, origins)

    def _note_secret_attr(self, key: str, origins: Origins) -> None:
        """A source-tainted value stored on ``self`` marks the class."""
        cls = self.fn.class_qname
        self_name = self.fn.self_name
        if cls is None or self_name is None:
            return
        parts = key.split(".")
        if len(parts) == 2 and parts[0] == self_name:
            if any(o.startswith("source:") for o in origins):
                self.attr_updates.add((cls, parts[1]))

    # -- expressions ---------------------------------------------------------

    def _eval(self, expr: ast.expr) -> Origins:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Attribute):
            dotted = dotted_source(expr)
            if dotted:
                return self.env.get(dotted, _EMPTY) | self._self_attr_origins(dotted)
            return self._eval(expr.value)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.BitXor):
                # ciphertext = plaintext ^ keystream: the declassification
                # boundary of every counter-mode design in this repo
                self._eval(expr.left)
                self._eval(expr.right)
                return _EMPTY
            return self._eval(expr.left) | self._eval(expr.right)
        if isinstance(expr, ast.BoolOp):
            out: Origins = _EMPTY
            for value in expr.values:
                out = out | self._eval(value)
            return out
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return _EMPTY  # a boolean is not the secret
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            out = _EMPTY
            for elt in expr.elts:
                out = out | self._eval(elt)
            return out
        if isinstance(expr, ast.Dict):
            out = _EMPTY
            for key in expr.keys:
                if key is not None:
                    out = out | self._eval(key)
            for value in expr.values:
                out = out | self._eval(value)
            return out
        if isinstance(expr, ast.Subscript):
            out = self._eval(expr.value)
            self._eval(expr.slice)
            return out
        if isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self._eval(part)
            return _EMPTY
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body) | self._eval(expr.orelse)
        if isinstance(expr, ast.JoinedStr):
            out = _EMPTY
            for value in expr.values:
                out = out | self._eval(value)
            return out
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.NamedExpr):
            origins = self._eval(expr.value)
            self._bind(expr.target, origins)
            return origins
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(expr.elt, expr.generators)
        if isinstance(expr, ast.DictComp):
            keys = self._eval_comprehension(expr.key, expr.generators)
            values = self._eval_comprehension(expr.value, expr.generators)
            return keys | values
        return _EMPTY

    def _eval_comprehension(
        self, elt: ast.expr, generators: List[ast.comprehension]
    ) -> Origins:
        # bind comprehension targets to their iterable's taint, then let the
        # element expression decide (so `a ^ b for a, b in zip(pt, pad)`
        # correctly declassifies even though `pad` is tainted)
        saved = dict(self.env)
        try:
            for gen in generators:
                self._bind(gen.target, self._eval(gen.iter))
                for cond in gen.ifs:
                    self._eval(cond)
            return self._eval(elt)
        finally:
            self.env = saved

    # -- calls ---------------------------------------------------------------

    def _arg_origins(self, call: ast.Call) -> List[Tuple[str, Origins, ast.expr]]:
        out: List[Tuple[str, Origins, ast.expr]] = []
        for arg in call.args:
            out.append(("", self._eval(arg), arg))
        for kw in call.keywords:
            out.append((kw.arg or "", self._eval(kw.value), kw.value))
        return out

    def _eval_call(self, call: ast.Call) -> Origins:
        args = self._arg_origins(call)
        dotted = dotted_source(call.func)
        parts = dotted.split(".") if dotted else []
        result: Origins = _EMPTY

        sink = _is_telemetry_sink(call.func) if dotted else None
        if sink is not None:
            for _, origins, expr in args:
                if origins:
                    self.events.append(
                        SinkEvent(
                            node=call, sink=sink, origins=origins,
                            label=_label_of(expr),
                        )
                    )
            return _EMPTY

        candidates = self.index.resolve_call(self.fn, call)
        if candidates:
            for qname in candidates:
                result = result | self._apply_summary(call, qname, args)
            return result

        # alias-expanded source/ctor match: the key TCB module need not be
        # part of the scanned set for its outputs to count as secret
        expanded = self.index.expand_name(self.fn, dotted) if dotted else ""
        if expanded in SECRET_SOURCE_QNAMES:
            return frozenset({f"source:{expanded}"})
        if expanded in SECRET_CLASS_QNAMES:
            return frozenset({f"source:{expanded}"})

        # unresolved call: builtins / stdlib / dynamic dispatch
        if parts and parts[0] in _STOPPER_ROOTS:
            return _EMPTY
        if len(parts) >= 2 and parts[-1] in _STOPPER_METHODS:
            return _EMPTY
        receiver = _EMPTY
        if isinstance(call.func, ast.Attribute):
            receiver = self._eval(call.func.value)
            if receiver and parts and parts[-1] in _PROPAGATING_METHODS:
                result = result | receiver
            if receiver and parts and parts[-1] in SECRET_METHODS:
                result = result | receiver
        for _, origins, _expr in args:
            result = result | origins
        return result

    def _apply_summary(
        self,
        call: ast.Call,
        qname: str,
        args: List[Tuple[str, Origins, ast.expr]],
    ) -> Origins:
        result: Origins = _EMPTY
        if qname in SECRET_SOURCE_QNAMES:
            result = result | frozenset({f"source:{qname}"})
        base = qname.rsplit(".", 1)[0]
        if qname in SECRET_CLASS_QNAMES or (
            qname.endswith(".__init__") and base in SECRET_CLASS_QNAMES
        ):
            result = result | frozenset({f"source:{base or qname}"})
        callee = self.index.functions.get(qname)
        summary = self.summaries.get(qname)
        if callee is None or summary is None:
            # a plain class qname (no __init__): constructor of a class we
            # indexed but that defines no init — nothing more to learn
            for _, origins, _expr in args:
                result = result | origins
            return result
        if summary.returns_secret:
            result = result | frozenset({f"source:via {qname}"})
        offset = 1 if callee.is_method else 0
        sink_params = summary.sink_params()
        positional = 0
        for name, origins, expr in args:
            if not origins:
                if not name:
                    positional += 1
                continue
            if name:
                try:
                    param_idx = callee.params.index(name)
                except ValueError:
                    param_idx = -1
            else:
                param_idx = positional + offset
                positional += 1
            if param_idx < 0 or param_idx >= len(callee.params):
                continue
            if param_idx in summary.taint_through:
                result = result | origins
            if param_idx in sink_params:
                self.events.append(
                    SinkEvent(
                        node=call,
                        sink=(
                            f"{sink_params[param_idx]} via {qname} "
                            f"(param `{callee.params[param_idx]}`)"
                        ),
                        origins=origins,
                        label=_label_of(expr),
                    )
                )
        # secret-bearing object construction: a tainted ctor arg taints
        # the object handle itself
        if qname.endswith(".__init__"):
            for _, origins, _expr in args:
                if any(o.startswith("source:") for o in origins):
                    result = result | origins
        return result


# -- abort reachability ------------------------------------------------------


def _raises_abort(node: FunctionNode) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Raise) and sub.exc is not None:
            exc = sub.exc
            name = ""
            if isinstance(exc, ast.Call):
                name = dotted_source(exc.func).split(".")[-1]
            else:
                name = dotted_source(exc).split(".")[-1]
            if name in ABORT_EXC_NAMES:
                return True
    return False


def _calls_abort(
    fn: FunctionInfo,
    index: ProjectIndex,
    summaries: Dict[str, FunctionSummary],
) -> bool:
    for call in index.iter_calls(fn):
        leaf = dotted_source(call.func).split(".")[-1]
        if leaf in ABORT_CALL_NAMES:
            return True
        for qname in index.resolve_call(fn, call):
            summary = summaries.get(qname)
            if summary is not None and summary.reaches_abort:
                return True
    return False


# -- the fixpoint ------------------------------------------------------------


def _summarize_once(
    fn: FunctionInfo,
    index: ProjectIndex,
    summaries: Dict[str, FunctionSummary],
    secret_attrs: Dict[str, Set[str]],
) -> Tuple[FunctionSummary, Set[Tuple[str, str]], List[SinkEvent]]:
    evaluator = _Evaluator(fn, index, summaries, secret_attrs)
    evaluator.run()
    returns_secret = any(
        o.startswith("source:") for o in evaluator.return_origins
    )
    taint_through = frozenset(
        int(o.split(":", 1)[1])
        for o in evaluator.return_origins
        if o.startswith("param:")
    )
    sink_params: Dict[int, str] = {}
    for event in evaluator.events:
        for origin in sorted(event.origins):
            if origin.startswith("param:"):
                idx = int(origin.split(":", 1)[1])
                sink_params.setdefault(idx, event.sink)
    reaches = (
        fn.name in ABORT_CALL_NAMES
        or _raises_abort(fn.node)
        or _calls_abort(fn, index, summaries)
    )
    summary = FunctionSummary(
        returns_secret=returns_secret,
        taint_through=taint_through,
        params_to_sink=tuple(sorted(sink_params.items())),
        reaches_abort=reaches,
    )
    return summary, evaluator.attr_updates, evaluator.events


@dataclass
class FlowAnalysis:
    """The converged whole-program dataflow state."""

    index: ProjectIndex
    summaries: Dict[str, FunctionSummary] = field(default_factory=dict)
    secret_attrs: Dict[str, Set[str]] = field(default_factory=dict)
    # per-function sink events from the final pass, for the reporting rules
    events: Dict[str, List[SinkEvent]] = field(default_factory=dict)


def analyze_project(index: ProjectIndex, max_rounds: int = 12) -> FlowAnalysis:
    """Run the summary fixpoint to convergence (monotone, so it halts)."""
    state = FlowAnalysis(index=index)
    functions = index.sorted_functions()
    state.summaries = {fn.qname: FunctionSummary() for fn in functions}
    for _ in range(max_rounds):
        changed = False
        for fn in functions:
            summary, attr_updates, events = _summarize_once(
                fn, index, state.summaries, state.secret_attrs
            )
            if summary != state.summaries[fn.qname]:
                state.summaries[fn.qname] = summary
                changed = True
            for cls, attr in sorted(attr_updates):
                known = state.secret_attrs.setdefault(cls, set())
                if attr not in known:
                    known.add(attr)
                    changed = True
            state.events[fn.qname] = events
        if not changed:
            break
    return state


def iter_source_events(state: FlowAnalysis) -> Iterator[Tuple[FunctionInfo, SinkEvent]]:
    """Sink events whose value provably derives from real key material."""
    for qname in sorted(state.events):
        fn = state.index.functions[qname]
        for event in state.events[qname]:
            if any(o.startswith("source:") for o in event.origins):
                yield fn, event


__all__ = [
    "ABORT_CALL_NAMES",
    "ABORT_EXC_NAMES",
    "FlowAnalysis",
    "FunctionSummary",
    "SECRET_CLASS_QNAMES",
    "SECRET_METHODS",
    "SECRET_PARAM_NAMES",
    "SECRET_SOURCE_QNAMES",
    "SinkEvent",
    "analyze_project",
    "iter_source_events",
]
