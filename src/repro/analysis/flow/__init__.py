"""Whole-program (interprocedural) analysis on top of the AST rule engine.

``symbols`` builds the project symbol table / call graph, ``summaries``
runs the dataflow fixpoint (taint, sink escape, abort reachability),
``rules`` registers the flow rule families, and ``graph`` exports the
call graph + layer DAG for `repro lint --graph`.

:class:`ProjectState` is the handle the runner passes to every
:class:`~repro.analysis.registry.ProjectRule`: the index is built eagerly
(cheap — one pass over already-parsed trees), the taint fixpoint lazily
(first rule that asks pays for it, later rules reuse it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.flow.summaries import FlowAnalysis, analyze_project
from repro.analysis.flow.symbols import ProjectIndex


@dataclass
class ProjectState:
    """Shared whole-program state for one ``analyze_paths`` run."""

    index: ProjectIndex
    _flow: Optional[FlowAnalysis] = field(default=None, repr=False)

    @property
    def flow(self) -> FlowAnalysis:
        if self._flow is None:
            self._flow = analyze_project(self.index)
        return self._flow


__all__ = ["FlowAnalysis", "ProjectIndex", "ProjectState"]
