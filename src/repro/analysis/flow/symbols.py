"""Project-wide symbol table and call graph for the flow analysis.

The per-module rules see one file at a time; everything in this package
sees the *program*. :class:`ProjectIndex` is built once per ``analyze_paths``
run from the already-parsed :class:`~repro.analysis.context.ModuleContext`
objects and answers three questions the interprocedural rules need:

- which functions exist, and under what qualified name
  (``repro.serve.session.SecureChannel.seal``);
- what does a given ``ast.Call`` inside a given function resolve to
  (import aliases, ``self.method``, module-level names, and — as a
  deliberately over-approximate fallback — any method of the same name
  anywhere in the project);
- which module/package imports which (the observed layer graph that
  ``flow-layer-drift`` diffs against the documented DAG).

Everything is ordered: modules, functions and call candidates are kept in
sorted containers so two runs over the same tree produce byte-identical
reports (the determinism bar the rest of the repo holds itself to).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.context import ModuleContext, dotted_source

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# `x.meth(...)` on an object of unknown type matches every method named
# `meth`; past this many candidates the name is too generic to be a useful
# edge and we drop it rather than spray taint across the project.
_MAX_NAME_CANDIDATES = 6


@dataclass
class FunctionInfo:
    """One function or method, anchored to its module context."""

    qname: str  # "repro.serve.session.SecureChannel.seal"
    module: str  # dotted module name
    name: str  # bare name ("seal")
    class_qname: Optional[str]  # "repro.serve.session.SecureChannel" or None
    node: FunctionNode
    ctx: ModuleContext
    params: Tuple[str, ...] = ()  # positional params, `self`/`cls` included

    @property
    def is_method(self) -> bool:
        return self.class_qname is not None

    @property
    def self_name(self) -> Optional[str]:
        """The receiver parameter name for methods (usually ``self``)."""
        if self.class_qname is not None and self.params:
            return self.params[0]
        return None


@dataclass
class ClassInfo:
    """One class: its methods by bare name, in definition order."""

    qname: str
    module: str
    name: str
    methods: Dict[str, str] = field(default_factory=dict)  # bare -> fn qname


@dataclass
class ModuleInfo:
    """Per-module symbol state: import aliases and top-level definitions."""

    ctx: ModuleContext
    aliases: Dict[str, str] = field(default_factory=dict)  # local -> dotted
    functions: List[str] = field(default_factory=list)  # fn qnames, def order
    classes: List[str] = field(default_factory=list)  # class qnames

    @property
    def module(self) -> str:
        return self.ctx.module

    @property
    def package(self) -> str:
        return self.ctx.package


def _params_of(node: FunctionNode) -> Tuple[str, ...]:
    args = node.args
    ordered = [*args.posonlyargs, *args.args]
    names = [a.arg for a in ordered]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    return tuple(names)


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Resolve a ``from ..x import y`` module reference to a dotted name."""
    parts = module.split(".")
    # level 1 == the current package (strip the module leaf), each extra
    # level strips one more package
    base = parts[: max(len(parts) - level, 0)]
    if target:
        base.append(target)
    return ".".join(base)


class ProjectIndex:
    """The whole-program view the interprocedural rules run over."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        # bare method name -> sorted fn qnames (the unknown-receiver fallback)
        self.methods_by_name: Dict[str, List[str]] = {}
        # observed repro-package import edges: (from_pkg, to_pkg) -> count
        self.package_edges: Dict[Tuple[str, str], int] = {}
        # module-level import edges for the graph export
        self.module_imports: Dict[str, List[str]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[ModuleContext]) -> "ProjectIndex":
        index = cls()
        for ctx in sorted(contexts, key=lambda c: c.relpath):
            index._index_module(ctx)
        for name in index.methods_by_name:
            index.methods_by_name[name].sort()
        return index

    def _module_key(self, ctx: ModuleContext) -> str:
        # files without a derivable dotted name (rare: out-of-tree scans)
        # are indexed by their relpath so nothing silently disappears
        return ctx.module or ctx.relpath

    def _index_module(self, ctx: ModuleContext) -> None:
        key = self._module_key(ctx)
        info = ModuleInfo(ctx=ctx)
        self.modules[key] = info
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.aliases[local] = target
            elif isinstance(stmt, ast.ImportFrom):
                source = (
                    _resolve_relative(key, stmt.level, stmt.module)
                    if stmt.level
                    else (stmt.module or "")
                )
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.aliases[local] = f"{source}.{alias.name}" if source else alias.name
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, info, stmt, class_qname=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(ctx, info, stmt)
        # layer edges come from EVERY import in the module, including lazy
        # function-level ones — sec-layering sees those too, so an edge used
        # only inside a function must still count as "observed"
        imports: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                imports.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                source = (
                    _resolve_relative(key, node.level, node.module)
                    if node.level
                    else (node.module or "")
                )
                if source:
                    imports.add(source)
        self.module_imports[key] = sorted(imports)
        self._record_package_edges(info, imports)

    def _record_package_edges(self, info: ModuleInfo, imports: Set[str]) -> None:
        from_pkg = info.package
        if not from_pkg:
            return
        for target in sorted(imports):
            parts = target.split(".")
            if parts[0] != "repro" or len(parts) < 2:
                continue
            to_pkg = parts[1]
            if to_pkg == from_pkg:
                continue
            edge = (from_pkg, to_pkg)
            self.package_edges[edge] = self.package_edges.get(edge, 0) + 1

    def _index_function(
        self,
        ctx: ModuleContext,
        info: ModuleInfo,
        node: FunctionNode,
        class_qname: Optional[str],
    ) -> None:
        key = self._module_key(ctx)
        if class_qname is None:
            qname = f"{key}.{node.name}"
            info.aliases.setdefault(node.name, qname)
            info.functions.append(qname)
        else:
            qname = f"{class_qname}.{node.name}"
        self.functions[qname] = FunctionInfo(
            qname=qname,
            module=key,
            name=node.name,
            class_qname=class_qname,
            node=node,
            ctx=ctx,
            params=_params_of(node),
        )
        if class_qname is not None and not node.name.startswith("__"):
            self.methods_by_name.setdefault(node.name, []).append(qname)

    def _index_class(
        self, ctx: ModuleContext, info: ModuleInfo, node: ast.ClassDef
    ) -> None:
        key = self._module_key(ctx)
        qname = f"{key}.{node.name}"
        cls_info = ClassInfo(qname=qname, module=key, name=node.name)
        self.classes[qname] = cls_info
        info.aliases.setdefault(node.name, qname)
        info.classes.append(qname)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, info, stmt, class_qname=qname)
                cls_info.methods[stmt.name] = f"{qname}.{stmt.name}"

    # -- queries -------------------------------------------------------------

    def sorted_functions(self) -> List[FunctionInfo]:
        return [self.functions[q] for q in sorted(self.functions)]

    def module_of(self, fn: FunctionInfo) -> Optional[ModuleInfo]:
        return self.modules.get(fn.module)

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_qname is None:
            return None
        return self.classes.get(fn.class_qname)

    def resolve_call(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Tuple[str, ...]:
        """Candidate callee qnames for ``call`` appearing inside ``fn``.

        Returns function qnames and/or class qnames (for constructor
        calls). Empty tuple == unresolved (builtins, dynamic dispatch on
        values we cannot type).
        """
        dotted = dotted_source(call.func)
        if not dotted:
            return ()
        parts = dotted.split(".")
        # self.method(...) -> this class's method when it exists
        if fn.self_name is not None and parts[0] == fn.self_name:
            if len(parts) == 2:
                cls = self.class_of(fn)
                if cls is not None and parts[1] in cls.methods:
                    return (cls.methods[parts[1]],)
                return self._by_method_name(parts[1])
            # self.attr.meth(...): unknown receiver type
            return self._by_method_name(parts[-1])
        info = self.module_of(fn)
        resolved = self._resolve_dotted(info, parts)
        if resolved:
            return resolved
        if len(parts) >= 2:
            return self._by_method_name(parts[-1])
        return ()

    def _resolve_dotted(
        self, info: Optional[ModuleInfo], parts: List[str]
    ) -> Tuple[str, ...]:
        if info is None:
            return ()
        base = info.aliases.get(parts[0])
        if base is None:
            return ()
        full = ".".join([base, *parts[1:]])
        if full in self.functions:
            return (full,)
        if full in self.classes:
            # constructor: resolve to __init__ when defined, else the class
            init = self.classes[full].methods.get("__init__")
            return (init or full,)
        # alias points at a class and the call is a method on it
        # (`Channel.open(...)` style) or at a module-level attribute chain
        if base in self.classes and len(parts) == 2:
            method = self.classes[base].methods.get(parts[1])
            if method is not None:
                return (method,)
        return ()

    def expand_name(self, fn: FunctionInfo, dotted: str) -> str:
        """Alias-expand a dotted name (``km.derive_kek`` ->
        ``repro.core.key_management.derive_kek``) without requiring the
        target module to be part of the scanned set."""
        info = self.module_of(fn)
        if info is None or not dotted:
            return dotted
        parts = dotted.split(".")
        base = info.aliases.get(parts[0])
        if base is None:
            return dotted
        return ".".join([base, *parts[1:]])

    def _by_method_name(self, name: str) -> Tuple[str, ...]:
        candidates = self.methods_by_name.get(name, [])
        if 0 < len(candidates) <= _MAX_NAME_CANDIDATES:
            return tuple(candidates)
        return ()

    def iter_calls(self, fn: FunctionInfo) -> Iterator[ast.Call]:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield node


__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "FunctionNode",
    "ModuleInfo",
    "ProjectIndex",
]
