"""`python -m repro lint` implementation.

Exit codes: 0 = clean (modulo baseline/suppressions), 1 = unbaselined
findings (or parse errors), 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.flow.graph import render_graph
from repro.analysis.registry import all_rules
from repro.analysis.report import render_json, render_sarif, render_text
from repro.analysis.runner import analyze_paths

DEFAULT_BASELINE = "analysis-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text; sarif for code scanning)",
    )
    parser.add_argument(
        "--graph", metavar="PATH", default=None,
        help="also export the call graph + layer DAG as JSON to PATH "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to absorb all current findings",
    )
    parser.add_argument(
        "--root", default=".",
        help="directory report paths are made relative to (default: cwd)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="also list suppressed and baselined findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe every registered rule and exit",
    )


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id}  [{rule.family}]")
        print(f"    {rule.summary}")
        print(f"    rationale: {rule.rationale}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()
    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    root = Path(args.root)
    baseline_path = Path(args.baseline)

    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result = analyze_paths(
        paths, root=root, baseline=baseline,
        need_project=args.graph is not None,
    )

    if args.graph is not None:
        if result.project is None:
            print("error: --graph needs at least one parsable file",
                  file=sys.stderr)
            return 2
        rendered = render_graph(result.project.index)
        if args.graph == "-":
            sys.stdout.write(rendered)
        else:
            Path(args.graph).write_text(rendered, encoding="utf-8")
            print(f"call graph + layer DAG written to {args.graph}",
                  file=sys.stderr)

    if args.update_baseline:
        fresh = Baseline.from_findings(result.new_findings)
        fresh.save(baseline_path)
        print(
            f"baseline updated: {fresh.total()} finding(s) recorded "
            f"in {baseline_path}"
        )
        return 0

    if args.format == "json":
        sys.stdout.write(render_json(result.findings, result.files_scanned))
    elif args.format == "sarif":
        sys.stdout.write(render_sarif(result.findings, result.files_scanned))
    else:
        print(render_text(result.findings, result.files_scanned, args.verbose))
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="static analysis: determinism, security-flow, sim-time",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
