"""The unit of analyzer output: one finding at one source location."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Union


class FindingStatus(enum.Enum):
    """How the runner disposed of a finding."""

    NEW = "new"  # unhandled: fails the lint
    SUPPRESSED = "suppressed"  # justified inline `# repro: allow[...]` comment
    BASELINED = "baselined"  # matched an entry in the committed baseline


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file/line/column.

    ``line_text`` carries the stripped source line so baseline matching
    survives unrelated line-number churn (content-addressed, not
    position-addressed).
    """

    rule: str
    path: str  # POSIX-style, relative to the scan root when possible
    line: int
    col: int
    message: str
    line_text: str = ""
    status: FindingStatus = FindingStatus.NEW
    justification: str = ""

    def sort_key(self) -> "tuple[str, int, int, str]":
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> "tuple[str, str, str]":
        """Identity used for baseline matching: position-independent."""
        return (self.rule, self.path, self.line_text)

    def with_status(
        self, status: FindingStatus, justification: str = ""
    ) -> "Finding":
        return replace(self, status=status, justification=justification)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
            "status": self.status.value,
            "justification": self.justification,
        }


# Pseudo-rule identifiers emitted by the framework itself rather than a
# registered visitor rule.
PARSE_ERROR_RULE = "meta-parse-error"
UNJUSTIFIED_SUPPRESSION_RULE = "meta-unjustified-suppression"

__all__ = [
    "Finding",
    "FindingStatus",
    "PARSE_ERROR_RULE",
    "UNJUSTIFIED_SUPPRESSION_RULE",
]
