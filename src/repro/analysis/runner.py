"""File collection, single-pass AST dispatch, and finding disposition."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.analysis.baseline import Baseline
from repro.analysis.context import ModuleContext
from repro.analysis.finding import (
    Finding,
    FindingStatus,
    PARSE_ERROR_RULE,
    UNJUSTIFIED_SUPPRESSION_RULE,
)
from repro.analysis.flow import ProjectState
from repro.analysis.flow.symbols import ProjectIndex
from repro.analysis.registry import ProjectRule, Rule, all_rules


@dataclass
class AnalysisResult:
    """Findings plus enough bookkeeping for reporters and exit codes."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    # whole-program state (symbol table / call graph / taint fixpoint);
    # populated whenever project rules ran or the caller asked for it
    project: Optional[ProjectState] = None

    @property
    def new_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.status is FindingStatus.NEW]

    @property
    def exit_code(self) -> int:
        return 1 if self.new_findings else 0


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Sorted, deterministic traversal; hidden dirs and caches skipped."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for sub in sorted(path.rglob("*.py")):
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in sub.parts
            ):
                continue
            yield sub


def _relpath(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def _dispatch(rules: Sequence[Rule], ctx: ModuleContext) -> Iterator[Finding]:
    interest: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        yield from rule.check_module(ctx)
        for node_type in rule.node_types:
            interest.setdefault(node_type, []).append(rule)
    for node in ast.walk(ctx.tree):
        for rule in interest.get(type(node), ()):
            yield from rule.visit(node, ctx)


def _disposition(ctx: ModuleContext, finding: Finding) -> Finding:
    suppression = ctx.suppression_for(finding.rule, finding.line)
    if suppression is not None:
        return finding.with_status(
            FindingStatus.SUPPRESSED, justification=suppression.reason
        )
    return finding


def _suppression_hygiene(ctx: ModuleContext) -> Iterator[Finding]:
    for suppression in ctx.suppressions:
        if not suppression.reason:
            yield Finding(
                rule=UNJUSTIFIED_SUPPRESSION_RULE,
                path=ctx.relpath,
                line=suppression.line,
                col=1,
                message=(
                    "suppression without a justification; write "
                    "`# repro: allow[rule-id] -- why this is intentional`"
                ),
                line_text=ctx.line_text(suppression.line),
            )


def _absorb(
    baseline: Optional[Baseline], findings: List[Finding]
) -> List[Finding]:
    if baseline is None:
        return findings
    return [
        finding.with_status(FindingStatus.BASELINED)
        if finding.status is FindingStatus.NEW and baseline.absorb(finding)
        else finding
        for finding in findings
    ]


def analyze_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
    need_project: bool = False,
) -> AnalysisResult:
    """Run every rule over every Python file under ``paths``.

    ``root`` anchors the relative paths used in reports and baseline keys.
    ``baseline`` (if given) absorbs known findings instead of failing them.
    ``need_project`` forces the whole-program index to be built (and kept
    on the result) even when no project rule is active — the `--graph`
    export path.
    """
    active_rules = list(rules) if rules is not None else all_rules()
    if baseline is not None:
        baseline.reset()
    result = AnalysisResult()
    contexts: List[ModuleContext] = []
    for path in iter_python_files(paths):
        result.files_scanned += 1
        relpath = _relpath(path, root)
        try:
            ctx = ModuleContext.parse(path, relpath)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        contexts.append(ctx)
        module_findings = [
            _disposition(ctx, finding) for finding in _dispatch(active_rules, ctx)
        ]
        module_findings.extend(_suppression_hygiene(ctx))
        result.findings.extend(_absorb(baseline, module_findings))

    # whole-program pass: one ProjectState shared by every project rule,
    # findings dispositioned through their module's suppressions/baseline
    project_rules = [r for r in active_rules if isinstance(r, ProjectRule)]
    if contexts and (project_rules or need_project):
        state = ProjectState(index=ProjectIndex.build(contexts))
        result.project = state
        ctx_by_path = {ctx.relpath: ctx for ctx in contexts}
        project_findings: List[Finding] = []
        for rule in project_rules:
            for finding in rule.check_project(state):
                owner = ctx_by_path.get(finding.path)
                project_findings.append(
                    _disposition(owner, finding) if owner else finding
                )
        result.findings.extend(_absorb(baseline, project_findings))

    result.findings.sort(key=Finding.sort_key)
    return result


__all__ = ["AnalysisResult", "analyze_paths", "iter_python_files"]
