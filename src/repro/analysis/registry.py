"""Rule base class and registry.

A rule declares which AST node types it wants (``node_types``); the runner
performs ONE walk per module and dispatches each node to every interested
rule, so analysis cost stays linear in file size regardless of rule count.
Rules that reason about the whole module at once (e.g. import layering)
implement ``check_module`` instead of / in addition to ``visit``.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Tuple, Type

from repro.analysis.context import ModuleContext
from repro.analysis.finding import Finding


class Rule:
    """One invariant checker. Subclass, set metadata, register."""

    id: str = ""
    family: str = ""  # determinism | security-flow | sim-time | flow
    summary: str = ""
    rationale: str = ""  # which paper invariant this protects
    node_types: Tuple[Type[ast.AST], ...] = ()

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        """Called for every node whose type is in ``node_types``."""
        return iter(())

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Called once per module, before node dispatch."""
        return iter(())


class ProjectRule(Rule):
    """A whole-program rule: runs once per scan over every parsed module.

    ``check_project`` receives a :class:`repro.analysis.flow.ProjectState`
    (typed ``Any`` here to keep the registry free of flow imports) holding
    the symbol table / call graph and the lazily-computed taint fixpoint.
    Findings still anchor to a file/line, so suppression comments and the
    baseline apply exactly as they do for per-module rules.
    """

    def check_project(self, project: Any) -> Iterator[Finding]:
        return iter(())


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index the rule by id."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in stable id order."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_by_id(rule_id: str) -> Rule:
    _load_builtin_rules()
    return _REGISTRY[rule_id]


_LOADED = False


def _load_builtin_rules() -> None:
    """Import the rule modules exactly once (import side-effect registers)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from repro.analysis.flow import rules as flow_rules  # noqa: F401
    from repro.analysis.rules import (  # noqa: F401
        determinism,
        fleet,
        perf,
        recovery,
        resilience,
        search,
        security,
        simtime,
    )


__all__ = ["ProjectRule", "Rule", "all_rules", "register", "rule_by_id"]
