"""Committed baseline: legacy findings that don't block CI.

Entries are content-addressed — ``(rule, path, stripped source line)`` with
a count — so unrelated edits that shift line numbers don't invalidate the
baseline, while *changing* a baselined line surfaces its finding again
(you touched it, you fix it).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.analysis.finding import Finding

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]  # (rule, path, line_text)


class Baseline:
    """In-memory view of the committed baseline file."""

    def __init__(self, entries: Union[Counter, None] = None) -> None:
        self.entries: Counter = entries if entries is not None else Counter()
        self._remaining: Counter = Counter(self.entries)

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries: Counter = Counter()
        for entry in data.get("entries", []):
            key = (entry["rule"], entry["path"], entry["line_text"])
            entries[key] += int(entry.get("count", 1))
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: Counter = Counter()
        for finding in findings:
            entries[finding.baseline_key()] += 1
        return cls(entries)

    def save(self, path: Path) -> None:
        serialized: List[Dict[str, Union[str, int]]] = [
            {"rule": rule, "path": rel, "line_text": text, "count": count}
            for (rule, rel, text), count in sorted(self.entries.items())
        ]
        payload = {"version": BASELINE_VERSION, "entries": serialized}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- matching ------------------------------------------------------------

    def absorb(self, finding: Finding) -> bool:
        """True (and consume one slot) if the finding is baselined."""
        key = finding.baseline_key()
        if self._remaining.get(key, 0) > 0:
            self._remaining[key] -= 1
            return True
        return False

    def reset(self) -> None:
        self._remaining = Counter(self.entries)

    def total(self) -> int:
        return sum(self.entries.values())


__all__ = ["Baseline", "BASELINE_VERSION"]
