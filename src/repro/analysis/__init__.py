"""repro.analysis — static enforcement of the simulator's core invariants.

The IceClave reproduction stands on three properties that code review alone
cannot guarantee as the codebase grows:

- **bit-determinism** — every run is a pure function of (config, seed); the
  chaos harness proves this dynamically, this package prevents regressions
  statically (no wall clocks, no ``random``, no unordered iteration);
- **security flow** — data crosses the trust boundary only through the
  MEE / cipher-engine path and raw key material stays inside a small,
  auditable set of modules (the paper's TCB argument, §4);
- **sim-time discipline** — simulated time is a float that must never be
  compared with ``==``, and components communicate through the event
  engine rather than poking each other's private state.

On top of the per-module rules, :mod:`repro.analysis.flow` runs a
whole-program pass — project symbol table, call graph, and a taint
fixpoint — powering the interprocedural rule families (secret-escape
reachability, async await-atomicity races, §4.5 exception containment,
and layer-DAG drift). See docs/ANALYSIS.md, "Interprocedural rules".

The package is deliberately dependency-free (stdlib ``ast`` only) so the
checker itself stays outside the simulator's import graph and can never
perturb what it measures.

Entry point: ``python -m repro lint [paths]`` (see :mod:`repro.analysis.cli`).
"""

from __future__ import annotations

from repro.analysis.finding import Finding, FindingStatus
from repro.analysis.registry import ProjectRule, Rule, all_rules, rule_by_id
from repro.analysis.runner import AnalysisResult, analyze_paths

__all__ = [
    "AnalysisResult",
    "Finding",
    "FindingStatus",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_paths",
    "rule_by_id",
]
