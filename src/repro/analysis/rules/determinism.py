"""Determinism rules.

Every simulator run must be a pure function of (configuration, seed): the
CLI proves it dynamically by fingerprinting chaos runs, the figures pipeline
relies on it for reproducibility, and PR 1's recovery tests replay fault
plans byte-for-byte. These rules keep the three classic leaks out:
ambient randomness, wall-clock reads, and iteration orders that depend on
object identity or hash seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.context import ModuleContext, dotted_source, parent_of
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register

_SEEDED_ALTERNATIVE = "use repro.crypto.prng.XorShift64 with an explicit seed"


# entropy modules: every read is fresh OS randomness, unreplayable by design
_ENTROPY_MODULES = ("random", "secrets")


@register
class ImportRandomRule(Rule):
    """Ban ambient entropy: ``random``, ``secrets``, ``os.urandom``, uuid4."""

    id = "det-import-random"
    family = "determinism"
    summary = "ambient entropy source used instead of the seeded XorShift64"
    rationale = (
        "Bit-determinism (chaos fingerprints, §6 methodology): `random` is "
        "process-global state, and `secrets`/`os.urandom()`/`uuid.uuid4()` "
        "read OS entropy that can never be replayed; a single call "
        "diverges every run. Even key material must come from the seeded "
        "derivation chain so campaigns stay byte-identical."
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Attribute, ast.Call)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _ENTROPY_MODULES:
                    yield ctx.finding(
                        self.id, node,
                        f"import of `{root}`; {_SEEDED_ALTERNATIVE}",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if node.level == 0 and root in _ENTROPY_MODULES:
                yield ctx.finding(
                    self.id, node, f"import from `{root}`; {_SEEDED_ALTERNATIVE}"
                )
            elif node.level == 0 and root == "uuid":
                random_uuids = [
                    alias.name for alias in node.names
                    if alias.name in ("uuid1", "uuid4")
                ]
                if random_uuids:
                    yield ctx.finding(
                        self.id, node,
                        f"imports entropy-backed {', '.join(random_uuids)} "
                        f"from `uuid`; {_SEEDED_ALTERNATIVE}",
                    )
        elif isinstance(node, ast.Call):
            yield from self._check_entropy_call(node, ctx)
        elif isinstance(node, ast.Attribute):
            if node.attr == "random" and isinstance(node.value, ast.Name):
                if node.value.id in ("numpy", "np") and not _is_seeded_rng(node):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"`{node.value.id}.random` global state is unseeded; "
                        "use np.random.default_rng(seed) or "
                        f"{_SEEDED_ALTERNATIVE}",
                    )

    def _check_entropy_call(
        self, node: ast.Call, ctx: ModuleContext
    ) -> Iterator[Finding]:
        dotted = dotted_source(node.func)
        if not dotted:
            return
        parts = dotted.split(".")
        if parts[0] == "os" and parts[-1] == "urandom":
            yield ctx.finding(
                self.id, node,
                f"`{dotted}()` reads OS entropy (unreplayable); "
                f"{_SEEDED_ALTERNATIVE}",
            )
        elif parts[0] == "uuid" and parts[-1] in ("uuid1", "uuid4"):
            yield ctx.finding(
                self.id, node,
                f"`{dotted}()` is entropy/host-state backed; derive ids "
                f"from the run seed instead ({_SEEDED_ALTERNATIVE})",
            )


def _is_seeded_rng(node: ast.Attribute) -> bool:
    """True for `np.random.default_rng(<explicit seed>)`: deterministic."""
    parent = parent_of(node)
    if not (isinstance(parent, ast.Attribute) and parent.attr == "default_rng"):
        return False
    call = parent_of(parent)
    return (
        isinstance(call, ast.Call)
        and call.func is parent
        and bool(call.args or call.keywords)
    )


_WALLCLOCK_CALLS = {
    "time": ("time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns"),
    "datetime": ("now", "utcnow", "today"),
    "date": ("today",),
}


@register
class WallClockRule(Rule):
    """Ban wall-clock reads; sim time comes from Engine.now."""

    id = "det-wallclock"
    family = "determinism"
    summary = "wall-clock read (`time.time()`, `datetime.now()`, ...)"
    rationale = (
        "Bit-determinism: host time leaking into schedules, stats or logs "
        "makes two identical runs diverge; simulated time is Engine.now."
    )
    node_types = (ast.Call, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "time":
                clocky = [
                    alias.name
                    for alias in node.names
                    if alias.name in _WALLCLOCK_CALLS["time"]
                ]
                if clocky:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"imports wall-clock function(s) {', '.join(clocky)} "
                        "from `time`; sim time must come from Engine.now",
                    )
            return
        assert isinstance(node, ast.Call)
        dotted = dotted_source(node.func)
        if not dotted:
            return
        parts = dotted.split(".")
        leaf = parts[-1]
        for base, leaves in _WALLCLOCK_CALLS.items():
            if leaf in leaves and base in parts[:-1]:
                yield ctx.finding(
                    self.id,
                    node,
                    f"wall-clock call `{dotted}()`; sim time must come from "
                    "Engine.now (host time breaks run fingerprints)",
                )
                return


def _lambda_calls_id(func: ast.expr) -> bool:
    if not isinstance(func, ast.Lambda):
        return False
    return any(
        isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Name)
        and sub.func.id == "id"
        for sub in ast.walk(func.body)
    )


@register
class IdOrderingRule(Rule):
    """Ban `id()` as an ordering key: CPython addresses vary per process."""

    id = "det-id-order"
    family = "determinism"
    summary = "`id()` used to order or compare objects"
    rationale = (
        "Bit-determinism: object addresses differ across processes; any "
        "order derived from id() reshuffles event/fault sequences per run."
    )
    node_types = (ast.Call, ast.Compare)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            callee = dotted_source(node.func)
            if callee.split(".")[-1] not in ("sorted", "sort", "min", "max"):
                return
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                uses_id = (
                    isinstance(value, ast.Name) and value.id == "id"
                ) or _lambda_calls_id(value)
                if uses_id:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"`{callee}(..., key=id)` orders by object address, "
                        "which changes every process; key on stable fields",
                    )
        elif isinstance(node, ast.Compare):
            ordered_ops = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
            if not any(isinstance(op, ordered_ops) for op in node.ops):
                return
            for operand in [node.left, *node.comparators]:
                if (
                    isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Name)
                    and operand.func.id == "id"
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        "ordering comparison on `id(...)`: object addresses "
                        "are not stable across runs",
                    )
                    return


def _is_unordered(expr: ast.expr) -> bool:
    """Set displays, set comprehensions, and `set(...)` calls."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("set", "frozenset"):
            return True
    return False


@register
class UnorderedIterationRule(Rule):
    """Ban direct iteration over sets: order is hash-seed dependent."""

    id = "det-unordered-iter"
    family = "determinism"
    summary = "iteration over a set (hash-order) without sorted()"
    rationale = (
        "Bit-determinism: set order depends on PYTHONHASHSEED for str keys; "
        "anything it feeds — Engine.schedule order, fault plans, event logs, "
        "GC victim picks — silently diverges between runs. Iterate "
        "sorted(...) instead."
    )
    node_types = (ast.For, ast.comprehension, ast.Call)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            if _is_unordered(node.iter):
                yield ctx.finding(
                    self.id,
                    node.iter,
                    "for-loop over a set iterates in hash order; wrap in "
                    "sorted(...) so downstream schedules stay deterministic",
                )
        elif isinstance(node, ast.comprehension):
            if _is_unordered(node.iter):
                yield ctx.finding(
                    self.id,
                    node.iter,
                    "comprehension over a set iterates in hash order; wrap "
                    "in sorted(...)",
                )
        elif isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Name)
                and callee.id in ("list", "tuple", "enumerate")
                and len(node.args) == 1
                and _is_unordered(node.args[0])
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    f"`{callee.id}(set)` freezes a hash-dependent order; "
                    "use sorted(...) to fix the sequence",
                )


__all__: Tuple[str, ...] = (
    "IdOrderingRule",
    "ImportRandomRule",
    "UnorderedIterationRule",
    "WallClockRule",
)
