"""Security-flow rules.

IceClave's security argument (§4, and the SoK small-TCB discipline) is a
*flow* argument: plaintext and key material live inside a small set of
trusted modules, everything else sees only ciphertext or costs. These rules
pin that argument into the import graph and the AST:

- the layering rule keeps low-level device models from reaching up into
  host/orchestration code (an Elasticlave-style boundary blur);
- the key-containment rule keeps raw cipher primitives and key-shaped
  state inside the sanctioned modules;
- the boundary rule forces page payloads to cross flash<->DRAM through the
  Ftl/MEE path rather than raw `*.chip` pokes;
- the telemetry rule keeps key material out of logs, stats and exporters;
- the broad-except rule stops `except Exception` from swallowing
  IntegrityError/TeeAbort and masking a detected attack.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from repro.analysis.context import ModuleContext, dotted_source
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register

# Allowed `repro.<pkg>` -> `repro.<pkg>` import edges. Keys absent from the
# map (the `repro` facade itself, `__main__`, fixtures without an override)
# are exempt. Same-package imports are always allowed.
#
# This map is kept MINIMAL: `flow-layer-drift` fails the lint for any grant
# no import actually uses, so every edge here is exercised by the tree it
# ships with. Widen it in the same PR that adds the import needing it.
LAYER_ALLOWED: Dict[str, FrozenSet[str]] = {
    "sim": frozenset(),
    # the REPRO_SPEED switch is pure configuration + ctypes loading; it
    # imports nothing from the tree so every layer may consult it
    "speed": frozenset(),
    "crypto": frozenset({"speed"}),
    # area models are pure arithmetic but register their memo caches with
    # the sim-layer stats surface
    "area": frozenset({"sim"}),
    "analysis": frozenset(),  # the checker must never import the simulator
    "flash": frozenset({"sim", "crypto", "speed"}),
    "dram": frozenset({"sim"}),
    "cpu": frozenset(),
    "ftl": frozenset({"flash", "sim"}),
    "query": frozenset({"crypto"}),
    "core": frozenset({"crypto", "ftl"}),
    "host": frozenset({"core", "ftl", "flash", "sim"}),
    # the chaos harness emulates the *host-visible* fault surface, so it may
    # reach down into host/nvme status mapping — but never up into platform
    "faults": frozenset({"core", "crypto", "flash", "ftl", "host", "sim"}),
    "workloads": frozenset({"query"}),
    "platform": frozenset(
        {"area", "core", "cpu", "flash", "ftl", "host", "query", "sim",
         "workloads"}
    ),
    # resilience policies sit above the device and host layers: they consume
    # fault plans and SLO metrics but are injected duck-typed downward, so
    # host/ftl never import them back (no cycle, small device-side TCB)
    "resilience": frozenset(
        {"crypto", "faults", "flash", "host", "platform", "sim"}
    ),
    # perf tooling (profiler, parallel figure runner, bench harness) drives
    # whole experiments, so it sits just below the CLI in the DAG
    "perf": frozenset(
        {"faults", "flash", "fleet", "platform", "resilience", "sim",
         "speed", "workloads"}
    ),
    # checkpoint/restore composes every stateful layer's snapshot_state();
    # the monitored layers stay duck-typed (they never import recovery back)
    "recovery": frozenset({"core", "faults", "sim"}),
    # the serving layer fronts the host library with attested sessions: it
    # composes resilience policies and platform metrics over the device
    # stack, and nothing below ever imports it back
    "serve": frozenset(
        {"core", "crypto", "faults", "flash", "ftl", "host", "platform",
         "resilience"}
    ),
    # the fleet layer shards N device stacks behind a consistent-hash
    # router: it consumes fault plans, resilience policies, recovery
    # snapshots and the serve wire taxonomy, and nothing below imports it
    # back (the service's channel-router hook stays duck-typed)
    "fleet": frozenset(
        {"crypto", "faults", "platform", "recovery", "resilience", "serve",
         "sim"}
    ),
    # the scenario-search layer drives whole campaigns as black boxes: it
    # composes the chaos/resilience/fleet/serve harnesses and the recovery
    # oracle, and nothing below ever imports it back
    "search": frozenset(
        {"crypto", "faults", "fleet", "recovery", "resilience", "serve",
         "sim", "workloads"}
    ),
    "cli": frozenset(
        {"analysis", "faults", "fleet", "perf", "platform", "recovery",
         "resilience", "search", "serve", "workloads"}
    ),
}


@register
class LayeringRule(Rule):
    """Enforce the allowed-import DAG between `repro.*` subpackages."""

    id = "sec-layering"
    family = "security-flow"
    summary = "import edge outside the trusted-layering DAG"
    rationale = (
        "Small-TCB discipline (§4.1): device models (ftl/flash/dram) must "
        "not import host/platform code, and only sanctioned layers may "
        "reach the TEE runtime; upward imports blur the trust boundary "
        "exactly where Elasticlave shows sharing designs break."
    )
    node_types = (ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        package = ctx.package
        allowed = LAYER_ALLOWED.get(package)
        if allowed is None:
            return
        targets = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: stays inside the package
                return
            if node.module:
                targets = [node.module]
        for target in targets:
            parts = target.split(".")
            if parts[0] != "repro" or len(parts) < 2:
                continue
            dep = parts[1]
            if dep == package or dep in allowed:
                continue
            yield ctx.finding(
                self.id,
                node,
                f"repro.{package} must not import repro.{dep} "
                f"(allowed: {', '.join(sorted(allowed)) or 'none'}); "
                "route through a sanctioned layer instead",
            )


# Modules allowed to touch raw cipher primitives and key-shaped state.
KEY_TCB_MODULES: FrozenSet[str] = frozenset(
    {
        "repro.core.mee",
        "repro.core.cipher_engine",
        "repro.core.fde",
        "repro.core.key_management",
        "repro.core.secure_boot",
        "repro.core.attestation",
        "repro.core.integrity",
        # the serve session layer derives, holds and uses per-session keys
        # (SecureChannel seal/open); it is the ONLY serve module allowed to
        "repro.serve.session",
    }
)
_PRIMITIVE_MODULES = (
    "repro.crypto.aes",
    "repro.crypto.mac",
    "repro.crypto.trivium",
    "repro.crypto.trivium_fast",
)
_PRIMITIVE_NAMES = frozenset({"AES128", "Mac", "Trivium", "TriviumFast"})
KEY_NAMES: FrozenSet[str] = frozenset(
    {
        "aes_key",
        "mac_key",
        "root_key",
        "session_key",
        "device_key",
        "private_key",
        "secret_key",
        "key_material",
    }
)


def _in_key_tcb(ctx: ModuleContext) -> bool:
    return (
        ctx.module in KEY_TCB_MODULES
        or ctx.module.startswith("repro.crypto")
        or ctx.package == ""  # unknown module: other rules still apply
    )


@register
class KeyContainmentRule(Rule):
    """Raw key material and cipher primitives stay inside the key TCB."""

    id = "sec-key-containment"
    family = "security-flow"
    summary = "raw key material / cipher primitive outside the key TCB"
    rationale = (
        "§4.4 MEE + §5 cipher engine: only the MEE, cipher-engine, FDE, "
        "key-management and boot/attestation modules may hold keys or "
        "instantiate AES/MAC/Trivium; key state sprayed across the tree is "
        "unauditable and ends up in logs and snapshots."
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call, ast.Assign, ast.AnnAssign)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if _in_key_tcb(ctx):
            return
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield from self._check_import(node, ctx)
        elif isinstance(node, ast.Call):
            name = dotted_source(node.func).split(".")[-1]
            if name in _PRIMITIVE_NAMES:
                yield ctx.finding(
                    self.id,
                    node,
                    f"direct construction of cipher primitive `{name}` "
                    "outside the key TCB; use the MEE/cipher-engine APIs",
                )
        else:  # Assign / AnnAssign: storing key-shaped state
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                label = self._key_label(target)
                if label is not None:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"key material `{label}` stored outside the key TCB "
                        "(repro.core.mee / cipher_engine / key_management); "
                        "hold a handle, not the key",
                    )

    @staticmethod
    def _key_label(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name) and target.id in KEY_NAMES:
            return target.id
        if isinstance(target, ast.Attribute) and target.attr in KEY_NAMES:
            return dotted_source(target) or target.attr
        return None

    def _check_import(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        modules = []
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            modules = [node.module]
        for module in modules:
            if module in _PRIMITIVE_MODULES:
                yield ctx.finding(
                    self.id,
                    node,
                    f"import of raw cipher primitive module `{module}` "
                    "outside the key TCB; use repro.core.mee or "
                    "repro.core.cipher_engine",
                )


# Packages on the wrong side of the flash<->DRAM boundary for raw chip pokes.
_CHIP_FORBIDDEN_PACKAGES = frozenset(
    {"core", "host", "platform", "query", "workloads", "sim", "cli", "dram", "cpu"}
)


@register
class BoundaryBypassRule(Rule):
    """Page payloads cross flash<->DRAM only via the Ftl/MEE path."""

    id = "sec-boundary-bypass"
    family = "security-flow"
    summary = "raw `.chip` access from outside the flash/FTL layers"
    rationale = (
        "§4.2/§4.4: everything above the FTL sees flash pages only through "
        "Ftl.read/write (access-controlled, cipher-wrapped); reaching "
        "through `.chip` skips both the PMP-style access check and the MEE."
    )
    node_types = (ast.Attribute,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Attribute)
        if ctx.package not in _CHIP_FORBIDDEN_PACKAGES:
            return
        # flag `<expr>.chip.<anything>` — reading *through* a chip handle
        if (
            isinstance(node.value, ast.Attribute)
            and node.value.attr == "chip"
        ):
            owner = dotted_source(node.value) or "<expr>.chip"
            yield ctx.finding(
                self.id,
                node,
                f"`{owner}.{node.attr}` bypasses the FTL/MEE boundary; raw "
                "chip state is only visible to repro.flash/repro.ftl "
                "(and the fault harness)",
            )


_TELEMETRY_SECRETS = KEY_NAMES | frozenset({"otp", "keystream", "pad", "plaintext_key"})
_TELEMETRY_MODULES = frozenset({"repro.sim.stats"})


def _is_telemetry_sink(func: ast.expr) -> Optional[str]:
    """Sink description if `func` is print/logging/log-append/csv-write."""
    dotted = dotted_source(func)
    if dotted == "print":
        return "print()"
    parts = dotted.split(".")
    leaf = parts[-1]
    if parts[0] in ("logging", "logger", "log") and leaf in (
        "debug", "info", "warning", "error", "critical", "exception", "log",
    ):
        return f"{dotted}()"
    if leaf in ("append", "write", "writerow", "writerows", "info", "debug",
                "warning", "error"):
        owner = ".".join(parts[:-1]).lower()
        if "log" in owner or "writer" in owner or "csv" in owner:
            return f"{dotted}()"
    return None


def _secret_names(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _TELEMETRY_SECRETS:
            yield sub.id
        elif isinstance(sub, ast.Attribute) and sub.attr in _TELEMETRY_SECRETS:
            yield dotted_source(sub) or sub.attr


@register
class TelemetryLeakRule(Rule):
    """Key/counter material must never reach logs, stats, or exporters."""

    id = "sec-telemetry-leak"
    family = "security-flow"
    summary = "key-shaped value flows into a log/stats/CSV sink"
    rationale = (
        "§4.4/§7: the MEE's guarantee dies if keys or keystream leak "
        "through side channels we built ourselves — event logs, "
        "sim/stats.py counters, CSV exporters are attacker-readable output."
    )
    node_types = (ast.Call, ast.Name, ast.Attribute)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            sink = _is_telemetry_sink(node.func)
            if sink is None:
                return
            leaked = set()
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                leaked.update(_secret_names(arg))
            for name in sorted(leaked):
                yield ctx.finding(
                    self.id,
                    node,
                    f"`{name}` flows into telemetry sink {sink}; key "
                    "material must never reach logs/stats/exports",
                )
        elif ctx.module in _TELEMETRY_MODULES:
            # stats is pure telemetry: referencing key material at all is a leak
            if isinstance(node, ast.Name) and node.id in _TELEMETRY_SECRETS:
                yield ctx.finding(
                    self.id, node,
                    f"`{node.id}` referenced inside telemetry module "
                    f"{ctx.module}",
                )


@register
class BroadExceptRule(Rule):
    """`except Exception` can swallow IntegrityError/TeeAbort: name types."""

    id = "sec-broad-except"
    family = "security-flow"
    summary = "broad `except Exception` / bare except"
    rationale = (
        "§4.5 ThrowOutTEE: tamper detection only works if IntegrityError "
        "and TeeAbort propagate to the abort path; a broad except silently "
        "converts a detected attack into a handled 'error'. Catch the "
        "concrete fault types (the three intentional §4.5 program-fault "
        "catches carry justified `repro: allow` waivers)."
    )
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        broad = self._broad_name(node.type)
        if broad is None:
            return
        yield ctx.finding(
            self.id,
            node,
            f"{broad} can swallow IntegrityError/TeeAbort; catch the "
            "concrete fault/recovery error types",
        )

    @staticmethod
    def _broad_name(type_node: Optional[ast.expr]) -> Optional[str]:
        if type_node is None:
            return "bare `except:`"
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [dotted_source(e) for e in type_node.elts]
        else:
            names = [dotted_source(type_node)]
        for name in names:
            if name in ("Exception", "BaseException"):
                return f"`except {name}`"
        return None


# Session-key-shaped names the serve layer may only hold inside its
# session module (superset of the serve-specific derivation vocabulary;
# the generic KEY_NAMES rule already covers `session_key` repo-wide).
_SERVE_KEY_NAMES: FrozenSet[str] = frozenset(
    {"session_key", "channel_key", "kek", "handshake_key", "derived_key"}
)
_SERVE_KEY_TCB: FrozenSet[str] = frozenset({"repro.serve.session"})


@register
class ServeSessionKeyLeakRule(Rule):
    """Per-session keys stay inside repro.serve.session."""

    id = "serve-session-key-leak"
    family = "security-flow"
    summary = "session key material escapes repro.serve.session"
    rationale = (
        "The serving handshake derives one key per attested session; the "
        "whole point of the SecureChannel abstraction is that the service, "
        "load generator and lab only ever see sealed envelopes. A "
        "session-key-shaped value stored or logged elsewhere in the serve "
        "layer would put tenant keys in reach of request handlers, SLO "
        "ledgers and event logs — exactly the multi-tenant isolation the "
        "attestation gate exists to provide."
    )
    node_types = (ast.Call, ast.Assign, ast.AnnAssign)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.package != "serve" or ctx.module in _SERVE_KEY_TCB:
            return
        if isinstance(node, ast.Call):
            sink = _is_telemetry_sink(node.func)
            if sink is None:
                return
            leaked = set()
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id in _SERVE_KEY_NAMES:
                        leaked.add(sub.id)
                    elif (
                        isinstance(sub, ast.Attribute)
                        and sub.attr in _SERVE_KEY_NAMES
                    ):
                        leaked.add(dotted_source(sub) or sub.attr)
            for name in sorted(leaked):
                yield ctx.finding(
                    self.id,
                    node,
                    f"session key `{name}` flows into telemetry sink {sink} "
                    "outside repro.serve.session; tenants' channel keys "
                    "must never reach logs or exports",
                )
        else:  # Assign / AnnAssign
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                label = self._key_label(target)
                if label is not None:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"session key material `{label}` stored outside "
                        "repro.serve.session; hold a ClientSession / "
                        "SecureChannel handle, not the key",
                    )

    @staticmethod
    def _key_label(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name) and target.id in _SERVE_KEY_NAMES:
            return target.id
        if isinstance(target, ast.Attribute) and target.attr in _SERVE_KEY_NAMES:
            return dotted_source(target) or target.attr
        return None


__all__: Tuple[str, ...] = (
    "BoundaryBypassRule",
    "BroadExceptRule",
    "KeyContainmentRule",
    "LayeringRule",
    "ServeSessionKeyLeakRule",
    "TelemetryLeakRule",
    "LAYER_ALLOWED",
    "KEY_TCB_MODULES",
    "KEY_NAMES",
)
