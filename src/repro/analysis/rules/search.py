"""Search-layer rules.

The scenario-search engine's whole contract is *replayability*: a corpus
entry is only a repro if the campaign that found it can be re-run
byte-for-byte from its seed. Every stochastic choice — mutation operator
picks, crossover gene flips, random seeding — must therefore draw from the
one threaded, explicitly seeded PRNG. A single ambient draw (a fresh
default-seeded ``XorShift64``, anything from the ``random`` module) makes
corpora irreproducible in a way no test notices until replay diverges.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register

# function names that mutate, recombine, or sample genomes
_STOCHASTIC_PATH_RE = re.compile(r"mutate|crossover|sample|select|breed", re.IGNORECASE)

# an explicit threaded-PRNG dependency looks like one of these names
_PRNG_TOKENS = frozenset({"rng", "prng"})


def _names_in(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def _arg_names(node: ast.FunctionDef) -> Set[str]:
    args = node.args
    collected = [
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]
    return {a.arg for a in collected}


@register
class UnseededSearchRandomnessRule(Rule):
    """Search mutation/selection must draw from the threaded seeded PRNG."""

    id = "search-unseeded-randomness"
    family = "determinism"
    summary = "search-layer randomness outside the threaded seeded PRNG"
    rationale = (
        "Corpus replayability: a search campaign is a pure function of its "
        "seed only if every mutation, crossover and sampling draw flows "
        "through the one threaded XorShift64. A fresh XorShift64() falls "
        "back to the process-global default stream, and random.* folds in "
        "interpreter state — either silently breaks the byte-identical "
        "double-run guarantee the corpus fingerprint asserts."
    )
    node_types = (ast.Call, ast.FunctionDef)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.package != "search":
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(node, ctx)
        elif isinstance(node, ast.FunctionDef):
            yield from self._check_stochastic_function(node, ctx)

    def _check_call(self, node: ast.Call, ctx: ModuleContext) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "XorShift64" and not node.args and not node.keywords:
                yield ctx.finding(
                    self.id,
                    node,
                    "XorShift64() without an explicit seed draws from the "
                    "shared default stream; thread the campaign PRNG (or "
                    "derive a sub-seed from it) instead",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        root = func.value
        if isinstance(root, ast.Name) and root.id == "random":
            yield ctx.finding(
                self.id,
                node,
                f"random.{func.attr}() is ambient interpreter entropy; "
                "search draws must come from the threaded XorShift64",
            )
        elif (
            isinstance(root, ast.Attribute)
            and root.attr == "random"
            and isinstance(root.value, ast.Name)
            and root.value.id in ("np", "numpy")
        ):
            yield ctx.finding(
                self.id,
                node,
                f"{root.value.id}.random.{func.attr}() is not replayable "
                "from the campaign seed; use the threaded XorShift64",
            )

    def _check_stochastic_function(
        self, node: ast.FunctionDef, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if not _STOCHASTIC_PATH_RE.search(node.name):
            return
        referenced = _arg_names(node) | _names_in(node)
        if referenced & _PRNG_TOKENS:
            return
        yield ctx.finding(
            self.id,
            node,
            f"stochastic search path `{node.name}` references no threaded "
            "PRNG (expected one of: " + ", ".join(sorted(_PRNG_TOKENS)) + "); "
            "mutation/selection must be replayable from the campaign seed",
        )


__all__: Tuple[str, ...] = ("UnseededSearchRandomnessRule",)
