"""Resilience rules.

The resilience toolkit's core contract is that every retry is *bounded* —
by an attempt budget (``RetryPolicy.max_attempts``), a deadline
(``TimeoutBudget.request_deadline_s``), or both. An unbounded retry loop
turns a transient fault into a livelock: it hammers a sick component
forever (defeating the circuit breaker), holds its queue slot (defeating
admission control), and never surfaces the failure the degradation ladder
needs to see. This rule pins that contract into the AST.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register

# identifiers whose presence inside the loop signals a bound on the retrying
_BOUND_NAMES = frozenset(
    {
        "max_attempts",
        "attempts",
        "attempt",
        "max_retries",
        "retries",
        "tries",
        "max_tries",
        "deadline",
        "budget",
        "remaining",
        "allows",
        "give_up",
    }
)


def _is_infinite(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and test.value in (True, 1)


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the except body lets control reach the next iteration."""
    last = handler.body[-1]
    return not isinstance(last, (ast.Raise, ast.Return, ast.Break))


def _references_bound(node: ast.While) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _BOUND_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _BOUND_NAMES:
            return True
        if isinstance(sub, ast.keyword) and sub.arg in _BOUND_NAMES:
            return True
    return False


@register
class UnboundedRetryRule(Rule):
    """`while True` retry loops must carry an attempt or deadline bound."""

    id = "resilience-unbounded-retry"
    family = "resilience"
    summary = "retry loop with no attempt or deadline bound"
    rationale = (
        "Bounded-retry contract: an infinite loop that catches an error "
        "and goes around again livelocks on a persistent fault — it "
        "defeats the circuit breaker, wedges a queue slot past admission "
        "control, and hides the failure from the degradation ladder. Gate "
        "every retry on max_attempts and/or a sim-time deadline "
        "(repro.resilience.policy.RetryPolicy / TimeoutBudget)."
    )
    node_types = (ast.While,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.While)
        if not _is_infinite(node.test):
            return
        handlers = [
            handler
            for sub in ast.walk(node)
            if isinstance(sub, ast.Try)
            for handler in sub.handlers
        ]
        # retry-shaped: at least one handler swallows the error and lets the
        # loop spin again
        if not any(_handler_swallows(h) for h in handlers):
            return
        if _references_bound(node):
            return
        yield ctx.finding(
            self.id,
            node,
            "`while True` retry loop with no attempt or deadline bound; "
            "cap it with max_attempts and/or a sim-time deadline "
            "(see repro.resilience.policy)",
        )


__all__: Tuple[str, ...] = ("UnboundedRetryRule",)
