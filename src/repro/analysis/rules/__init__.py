"""Built-in rule families: determinism, security-flow, sim-time, resilience, perf."""
