"""Performance rules.

The PR trajectory's profiling work (see docs/PERFORMANCE.md) found the two
patterns that repeatedly dominated hot-path cost in the event kernel and
the MEE replay: quadratic ``bytes += ...`` accumulation (every append
copies the whole buffer) and per-iteration object construction in loops
that run once per simulated event. These rules keep both patterns from
creeping back into the packages the profiler identified as hot — ``sim``,
``core`` and ``crypto``. Cold paths that allocate deliberately carry a
justified ``# repro: allow[perf-hot-loop-alloc]`` waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple, Union

from repro.analysis.context import ModuleContext, dotted_source, parent_of
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register

# Packages whose loops sit on the per-event hot path.
HOT_PACKAGES = frozenset({"core", "crypto", "sim"})

_LoopNode = Union[ast.For, ast.While]


def _enclosing_loop(node: ast.AST) -> Optional[_LoopNode]:
    """Nearest For/While ancestor within the same function body.

    Stops at function boundaries: a closure defined inside a loop runs
    when *called*, not once per iteration.
    """
    current = parent_of(node)
    while current is not None:
        if isinstance(current, (ast.For, ast.While)):
            return current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return None
        current = parent_of(current)
    return None


def _produces_bytes(expr: ast.expr) -> bool:
    """Conservatively true for expressions that build a fresh bytes object."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, bytes):
        return True
    if isinstance(expr, ast.Call):
        dotted = dotted_source(expr.func)
        leaf = dotted.split(".")[-1] if dotted else ""
        return leaf in ("bytes", "bytearray", "to_bytes", "pack")
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        return _produces_bytes(expr.left) or _produces_bytes(expr.right)
    return False


def _is_constructor_name(name: str) -> bool:
    """CamelCase heuristic: class constructors, not ALL_CAPS constants."""
    return (
        bool(name)
        and name[0].isupper()
        and any(ch.islower() for ch in name)
    )


@register
class HotLoopAllocRule(Rule):
    """Ban per-iteration buffer growth and object construction in hot loops."""

    id = "perf-hot-loop-alloc"
    family = "perf"
    summary = "bytes concatenation or object allocation inside a hot loop"
    rationale = (
        "Events/sec (benchmark trajectory, BENCH_*.json): `buf += chunk` "
        "copies the whole buffer every iteration (quadratic), and a fresh "
        "object per simulated event dominated MEE replay time before the "
        "allocation-free fast path. Batch chunks and b''.join them; hoist "
        "or pool per-event objects."
    )
    node_types = (ast.AugAssign, ast.Call)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.package not in HOT_PACKAGES:
            return
        if _enclosing_loop(node) is None:
            return
        if isinstance(node, ast.AugAssign):
            if isinstance(node.op, ast.Add) and _produces_bytes(node.value):
                yield ctx.finding(
                    self.id,
                    node,
                    "bytes `+=` in a loop copies the whole buffer each "
                    "iteration; collect chunks in a list and b''.join once",
                )
            return
        assert isinstance(node, ast.Call)
        parent = parent_of(node)
        if isinstance(parent, ast.Raise):
            # raising ends the loop's fast path; not a per-iteration cost
            return
        dotted = dotted_source(node.func)
        leaf = dotted.split(".")[-1] if dotted else ""
        if _is_constructor_name(leaf):
            yield ctx.finding(
                self.id,
                node,
                f"`{dotted}(...)` constructs an object every loop iteration "
                "on a hot path; hoist it out of the loop or accumulate into "
                "locals and build the object once",
            )


__all__: Tuple[str, ...] = ("HotLoopAllocRule",)
