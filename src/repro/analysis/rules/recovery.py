"""Recovery rules.

The checkpoint/restore contract (docs/RECOVERY.md) is that a class
participating in snapshotting — one that defines both ``snapshot_state``
and ``restore_state`` — serializes *every* piece of mutable state it
creates. An attribute initialized to a fresh list/dict/counter in
``__init__`` but absent from both methods silently resets on restore: the
crash-point oracle then sees a fingerprint mismatch at whichever crash
point first exercises it, which is an expensive way to discover a missing
line of serialization. This rule finds the missing line statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register

# constructor calls that build fresh mutable containers
_MUTABLE_FACTORIES = frozenset(
    {
        "dict",
        "list",
        "set",
        "deque",
        "OrderedDict",
        "defaultdict",
        "Counter",
        "bytearray",
    }
)


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_mutable_initializer(value: ast.expr) -> bool:
    """True for initializers that create fresh, restore-losable state.

    Literals (including scalars like ``0`` — counters are the classic
    forgotten attribute), container displays and comprehensions, and calls
    to the well-known container factories all count. Names, tuples, and
    arbitrary calls do not: those are usually injected collaborators or
    config, which the restore path reconstructs from constructor arguments.
    """
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Constant):
        return True
    if (
        isinstance(value, ast.UnaryOp)
        and isinstance(value.op, ast.USub)
        and isinstance(value.operand, ast.Constant)
    ):
        return True
    if isinstance(value, ast.Call):
        return _call_name(value) in _MUTABLE_FACTORIES
    return False


def _mentioned_names(func: ast.FunctionDef) -> Set[str]:
    """Attribute names a snapshot/restore method plausibly serializes.

    Both ``self.X`` accesses and exact string keys count — state dicts are
    keyed by strings, so ``{"cursor": self.cursor}`` mentions ``cursor``
    twice and ``state["cursor"]`` once.
    """
    names: Set[str] = set()
    for sub in ast.walk(func):
        if isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            names.add(sub.value)
    return names


def _self_assignments(init: ast.FunctionDef) -> Iterator[Tuple[str, ast.Assign]]:
    """(attribute name, assignment) for each ``self.X = ...`` in __init__."""
    for stmt in ast.walk(init):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, stmt


@register
class UnserializedStateRule(Rule):
    """Snapshot-participating classes must serialize every mutable attr."""

    id = "recovery-unserialized-state"
    family = "recovery"
    summary = "mutable attribute missing from snapshot_state/restore_state"
    rationale = (
        "Checkpoint/restore contract: a class with snapshot_state and "
        "restore_state must round-trip every mutable attribute it creates "
        "in __init__. A forgotten attribute silently resets on restore and "
        "surfaces only as a crash-point oracle fingerprint mismatch. "
        "Either serialize the attribute in both methods or waive the line "
        "with `# repro: allow[recovery-unserialized-state] -- why` when "
        "the attribute is derived, diagnostic, or re-armed by its owner."
    )
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        snapshot = _method(node, "snapshot_state")
        restore = _method(node, "restore_state")
        init = _method(node, "__init__")
        if snapshot is None or restore is None or init is None:
            return
        mentioned = _mentioned_names(snapshot) | _mentioned_names(restore)
        seen: Set[str] = set()
        for attr, assign in _self_assignments(init):
            if attr in seen:
                continue
            seen.add(attr)
            if attr in mentioned:
                continue
            if not _is_mutable_initializer(assign.value):
                continue
            yield ctx.finding(
                self.id,
                assign,
                f"`self.{attr}` is initialized in __init__ but never "
                "appears in snapshot_state/restore_state; it silently "
                "resets on restore — serialize it or waive with a reason",
            )


__all__: Tuple[str, ...] = ("UnserializedStateRule",)
