"""Fleet-layer rules.

The fleet layer (shard routing, rebalance, rebuild) is where placement
decisions multiply: one unseeded choice reshuffles every replica set and
every campaign fingerprint downstream. These rules pin the layer's
determinism contract — placement comes from a seeded PRNG and the sim
clock, never from ambient entropy, the process hash seed, or wallclock.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set, Tuple

from repro.analysis.context import ModuleContext
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register

# code paths that place or move data across the fleet
_TOPOLOGY_PATH_RE = re.compile(r"route|rebalance|rebuild", re.IGNORECASE)

# any one of these in a topology-path function signals an explicit seed or
# sim-clock dependency (rather than ambient state)
_SEEDED_TOKENS = frozenset({"now", "clock", "engine", "rng", "prng", "seed"})


def _names_in(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def _is_property(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = decorator.attr if isinstance(decorator, ast.Attribute) else (
            decorator.id if isinstance(decorator, ast.Name) else ""
        )
        if name in ("property", "cached_property"):
            return True
    return False


def _arg_names(node: ast.FunctionDef) -> Set[str]:
    args = node.args
    collected = [
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]
    return {a.arg for a in collected}


@register
class UnseededTopologyRule(Rule):
    """Shard placement must be a pure function of (seed, sim clock)."""

    id = "fleet-unseeded-topology"
    family = "determinism"
    summary = "fleet topology path without an explicit seed or sim clock"
    rationale = (
        "Rack-scale determinism: replica placement feeds every fleet "
        "fingerprint, so shard-router / rebalance / rebuild paths must "
        "take an explicit seeded PRNG or sim time. Builtin hash() folds "
        "in PYTHONHASHSEED, an unseeded XorShift64 falls back to a "
        "process-global constant stream shared across devices, and a "
        "placement function with no seed/clock input is ambient by "
        "construction — all three reshuffle replica sets between runs."
    )
    node_types = (ast.Call, ast.FunctionDef)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.package != "fleet":
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(node, ctx)
        elif isinstance(node, ast.FunctionDef):
            yield from self._check_topology_function(node, ctx)

    def _check_call(self, node: ast.Call, ctx: ModuleContext) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Name):
            return
        if node.func.id == "hash":
            yield ctx.finding(
                self.id,
                node,
                "builtin hash() depends on PYTHONHASHSEED; place keys with "
                "a seeded mix (repro.fleet.topology.seeded_mix) instead",
            )
        elif node.func.id == "XorShift64" and not node.args and not node.keywords:
            yield ctx.finding(
                self.id,
                node,
                "XorShift64() without an explicit seed falls back to the "
                "shared default stream; derive the seed from the run seed "
                "and device id",
            )

    def _check_topology_function(
        self, node: ast.FunctionDef, ctx: ModuleContext
    ) -> Iterator[Finding]:
        if not _TOPOLOGY_PATH_RE.search(node.name):
            return
        if _is_property(node):
            return  # derived-state getters report placement, don't do it
        referenced = _arg_names(node) | _names_in(node)
        if referenced & _SEEDED_TOKENS:
            return
        yield ctx.finding(
            self.id,
            node,
            f"topology path `{node.name}` references no seeded PRNG or sim "
            "clock (expected one of: " + ", ".join(sorted(_SEEDED_TOKENS)) + "); "
            "placement must be replayable from (seed, sim time)",
        )


__all__: Tuple[str, ...] = ("UnseededTopologyRule",)
