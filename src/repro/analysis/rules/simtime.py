"""Sim-time rules.

Simulation time is a float (seconds). Two disciplines keep the
discrete-event core honest: never compare sim-time values with `==`/`!=`
(float accumulation makes equality a coin flip — gate on ordering or event
sequence numbers instead), and never reach into another component's
`_private` state from an event callback (cross-component effects go through
Engine.schedule / sim.resource primitives so they land at a defined point
in the event order).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.context import ModuleContext, dotted_source
from repro.analysis.finding import Finding
from repro.analysis.registry import Rule, register

_TIME_EXACT = frozenset({"now", "_now", "sim_time", "deadline", "timestamp"})
_TIME_SUFFIXES = ("_time", "_latency_s", "_seconds", "_deadline")


def _time_label(expr: ast.expr) -> Optional[str]:
    """Render `expr` if it names a sim-time value, else None."""
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    else:
        return None
    if name in _TIME_EXACT or name.endswith(_TIME_SUFFIXES):
        return dotted_source(expr) or name
    return None


@register
class FloatTimeEqualityRule(Rule):
    """Ban `==`/`!=` on sim-time floats."""

    id = "sim-float-eq"
    family = "sim-time"
    summary = "`==`/`!=` comparison on float simulation time"
    rationale = (
        "Deterministic replay (§6): sim time accumulates float error, so "
        "equality tests pass or fail depending on schedule history; order "
        "events with <=/>= or the engine's (time, seq) tie-break instead."
    )
    node_types = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        # comparing against a string constant means it's not a time value
        if any(isinstance(o, ast.Constant) and isinstance(o.value, str)
               for o in operands):
            return
        for operand in operands:
            label = _time_label(operand)
            if label is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    f"float sim-time `{label}` compared with ==/!=; use "
                    "ordering (<=, >=) or event sequence numbers",
                )
                return


def _assign_targets(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        yield node.target


@register
class PrivateMutationRule(Rule):
    """Event callbacks must not mutate another component's `_private` state."""

    id = "sim-private-mutation"
    family = "sim-time"
    summary = "write to another object's `_private` attribute"
    rationale = (
        "Event-order integrity: `other._busy = 0` from a callback mutates "
        "state the owner believes it serializes through Engine events; use "
        "sim/resource.py primitives (acquire/cancel/schedule) so the "
        "mutation lands at a defined point in the event order."
    )
    node_types = (ast.Assign, ast.AugAssign, ast.AnnAssign)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        for target in _assign_targets(node):
            if not isinstance(target, ast.Attribute):
                continue
            attr = target.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            base = target.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                continue
            owner = dotted_source(base) or "<expr>"
            yield ctx.finding(
                self.id,
                node,
                f"direct write to `{owner}.{attr}`: foreign private state "
                "must change through its owner's API / sim.resource "
                "primitives, not cross-component pokes",
            )


__all__: Tuple[str, ...] = ("FloatTimeEqualityRule", "PrivateMutationRule")
