"""repro: a full-stack reproduction of IceClave (MICRO 2021).

IceClave is a lightweight trusted execution environment for in-storage
computing. This package re-implements the complete system the paper
evaluates, as a behavioral simulation:

- ``repro.core`` — the IceClave contribution: TrustZone-extended memory
  protection, the TEE runtime, the hybrid-counter memory encryption engine
  with Bonsai Merkle trees, and the Trivium stream-cipher engine.
- ``repro.flash`` / ``repro.ftl`` — the SSD substrate: discrete-event
  flash device and a page-level FTL with GC and wear leveling.
- ``repro.dram`` / ``repro.cpu`` — DDR3 and processor timing models.
- ``repro.workloads`` / ``repro.query`` — the Table 4 workloads, really
  executed by a miniature columnar query engine.
- ``repro.host`` / ``repro.platform`` — PCIe/SGX host models and the four
  §6.1 execution schemes, producing the paper's figures.

Quick start::

    from repro import IceClavePlatform, workload_by_name

    result = IceClavePlatform().run(workload_by_name("tpch-q1").run())
    print(result.total_time, result.components)
"""

from repro.core import (
    IceClaveConfig,
    IceClaveRuntime,
    MemoryEncryptionEngine,
    EncryptionScheme,
    StreamCipherEngine,
    Tee,
    TeeState,
)
from repro.flash import FlashDevice, FlashGeometry, FlashTiming
from repro.ftl import Ftl
from repro.host import IceClaveLibrary
from repro.platform import (
    HostPlatform,
    HostSgxPlatform,
    IceClavePlatform,
    IscPlatform,
    MultiTenantIceClave,
    PlatformConfig,
    RunResult,
    make_platform,
)
from repro.workloads import ALL_WORKLOADS, Workload, WorkloadProfile, workload_by_name

__version__ = "1.0.0"

__all__ = [
    "IceClaveConfig",
    "IceClaveRuntime",
    "MemoryEncryptionEngine",
    "EncryptionScheme",
    "StreamCipherEngine",
    "Tee",
    "TeeState",
    "FlashDevice",
    "FlashGeometry",
    "FlashTiming",
    "Ftl",
    "IceClaveLibrary",
    "HostPlatform",
    "HostSgxPlatform",
    "IceClavePlatform",
    "IscPlatform",
    "MultiTenantIceClave",
    "PlatformConfig",
    "RunResult",
    "make_platform",
    "ALL_WORKLOADS",
    "Workload",
    "WorkloadProfile",
    "workload_by_name",
    "__version__",
]
