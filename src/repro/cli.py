"""Command-line interface: run paper experiments from the shell.

Examples::

    python -m repro list
    python -m repro info
    python -m repro run tpch-q1 --scheme iceclave
    python -m repro compare wordcount --channels 16
    python -m repro sweep channels tpch-q3
    python -m repro sweep dram tpcc
    python -m repro chaos tpch-q1 --seed 42
    python -m repro resilience --seed 7 --quick
    python -m repro serve-lab --seed 7 --tenants 1000
    python -m repro lint src --format json
    python -m repro profile tpcc --scheme iceclave --top 15
    python -m repro bench --quick --jobs 4
    python -m repro compare wordcount --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.platform import PlatformConfig, make_platform
from repro.platform.schemes import SCHEMES, flash_read_throughput
from repro.workloads import ALL_WORKLOADS, workload_by_name

GIB = 1 << 30
DEFAULT_CHAOS_SEED = 42
DEFAULT_RESILIENCE_SEED = 7
DEFAULT_SERVE_SEED = 7
DEFAULT_FLEET_SEED = 42
DEFAULT_SEARCH_SEED = 7


def _make_profile(args: argparse.Namespace):
    """Instantiate and run the workload, honouring an explicit --seed."""
    kwargs = {}
    if getattr(args, "seed", None) is not None:
        kwargs["seed"] = args.seed
    return workload_by_name(args.workload, **kwargs).run()


def _build_config(args: argparse.Namespace) -> PlatformConfig:
    config = PlatformConfig()
    if getattr(args, "channels", None):
        config = config.with_channels(args.channels)
    if getattr(args, "dram_gb", None):
        config = config.with_dram(args.dram_gb * GIB)
    if getattr(args, "dataset_gb", None):
        config = config.with_dataset(args.dataset_gb * GIB)
    if getattr(args, "flash_latency_us", None):
        config = config.with_flash_read_latency(args.flash_latency_us * 1e-6)
    return config


def cmd_list(_: argparse.Namespace) -> int:
    print("workloads (Table 4):")
    for name, cls in sorted(ALL_WORKLOADS.items()):
        print(f"  {name:>12s}  {cls.description}")
    print("\nschemes (§6.1):")
    for name in sorted(SCHEMES):
        print(f"  {name}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    config = _build_config(args)
    geometry = config.geometry()
    print("platform configuration (Table 3 defaults):")
    print(f"  dataset            : {config.dataset_bytes / GIB:.0f} GB")
    print(f"  channels           : {config.channels}")
    print(f"  SSD capacity       : {geometry.capacity_bytes / (1 << 40):.2f} TB")
    print(f"  flash t_RD/t_WR    : {config.flash_timing.read_latency*1e6:.0f}/"
          f"{config.flash_timing.program_latency*1e6:.0f} us")
    print(f"  internal read bw   : {flash_read_throughput(config)/1e9:.2f} GB/s")
    print(f"  PCIe effective bw  : {config.pcie.effective_bandwidth/1e9:.2f} GB/s")
    print(f"  SSD cores          : {config.isc_cores}x {config.isc_core.name}")
    print(f"  SSD DRAM           : {config.iceclave.dram_bytes / GIB:.0f} GB")
    print(f"  MEE scheme         : {config.mee_scheme.value}")
    print(f"  counter cache      : {config.iceclave.counter_cache_bytes >> 10} KB")
    return 0


def _check_workload(name: str) -> Optional[str]:
    if name not in ALL_WORKLOADS:
        known = ", ".join(sorted(ALL_WORKLOADS))
        print(f"error: unknown workload '{name}' (known: {known})", file=sys.stderr)
        return None
    return name


def cmd_run(args: argparse.Namespace) -> int:
    if _check_workload(args.workload) is None:
        return 2
    config = _build_config(args)
    profile = _make_profile(args)
    result = make_platform(args.scheme, config).run(profile)
    print(f"{args.workload} on {args.scheme}: {result.total_time:.2f}s")
    for part, seconds in result.exposed().items():
        print(f"  {part:>10s}: {seconds:8.2f}s")
    if args.verbose:
        for key, value in sorted(result.stats.items()):
            print(f"  {key:>28s} = {value:.6g}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    if _check_workload(args.workload) is None:
        return 2
    config = _build_config(args)
    jobs = getattr(args, "jobs", 1) or 1
    schemes = sorted(SCHEMES)
    from repro.perf import map_points, platform_point

    seed = getattr(args, "seed", None)
    specs = [platform_point(args.workload, s, config, seed=seed) for s in schemes]
    results = dict(zip(schemes, map_points(specs, jobs=jobs)))
    host = results["host"]
    print(f"{args.workload}: ({config.channels} channels, "
          f"{config.dataset_bytes / GIB:.0f} GB dataset)")
    for name, result in results.items():
        rel = host.total_time / result.total_time
        print(f"  {name:>9s}: {result.total_time:8.2f}s  ({rel:.2f}x vs host)")
    ice, isc = results["iceclave"], results["isc"]
    print(f"  iceclave security overhead over isc: +{ice.overhead_over(isc)*100:.1f}%")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if _check_workload(args.workload) is None:
        return 2
    base = _build_config(args)
    if args.parameter == "channels":
        points = [(f"{ch}ch", base.with_channels(ch)) for ch in (4, 8, 16, 32)]
    elif args.parameter == "latency":
        points = [
            (f"{lat}us", base.with_flash_read_latency(lat * 1e-6))
            for lat in (10, 30, 50, 70, 90, 110)
        ]
    else:  # dram
        points = [(f"{gb}GB", base.with_dram(gb * GIB)) for gb in (2, 4, 8)]
    from repro.perf import map_points, platform_point

    jobs = getattr(args, "jobs", 1) or 1
    seed = getattr(args, "seed", None)
    sweep_schemes = ("host", "isc", "iceclave")
    specs = [
        platform_point(args.workload, scheme, cfg, seed=seed)
        for _, cfg in points
        for scheme in sweep_schemes
    ]
    results = map_points(specs, jobs=jobs)
    print(f"{args.workload}: sweeping {args.parameter}")
    print(f"{'point':>8s} {'host':>9s} {'isc':>9s} {'iceclave':>9s} {'ice/host':>9s}")
    for idx, (label, _) in enumerate(points):
        host, isc, ice = results[idx * 3: idx * 3 + 3]
        print(f"{label:>8s} {host.total_time:8.2f}s {isc.total_time:8.2f}s "
              f"{ice.total_time:8.2f}s {ice.speedup_over(host):8.2f}x")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    if _check_workload(args.workload) is None:
        return 2
    from repro.perf.profiler import profile_run

    config = _build_config(args)
    report = profile_run(
        args.workload,
        scheme=args.scheme,
        config=config,
        seed=getattr(args, "seed", None),
        sort=args.sort,
        top=args.top,
        top_allocs=args.top_allocs,
    )
    print(report.format())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.perf.bench import (
        check_regression,
        compare_benches,
        format_bench,
        format_compare,
        load_bench,
        run_bench,
        write_bench,
    )

    if args.compare:
        baseline_path, current_path = args.compare
        comparison = compare_benches(
            load_bench(pathlib.Path(baseline_path)),
            load_bench(pathlib.Path(current_path)),
        )
        print(format_compare(comparison))
        if args.compare_json:
            out = pathlib.Path(args.compare_json)
            out.parent.mkdir(parents=True, exist_ok=True)
            with out.open("w") as fh:
                json.dump(comparison, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {out}")
        return 0

    payload = run_bench(quick=args.quick, jobs=args.jobs)
    print(format_bench(payload))
    path = write_bench(payload, pathlib.Path(args.out))
    print(f"wrote {path}")
    if args.check:
        baseline = load_bench(pathlib.Path(args.check))
        problems = check_regression(payload, baseline)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    if _check_workload(args.workload) is None:
        return 2
    if args.ops < 10:
        print("error: chaos needs at least 10 operations (--ops)", file=sys.stderr)
        return 2
    from repro.faults import run_chaos
    from repro.faults.chaos import ChaosRunner

    seed = args.seed if args.seed is not None else DEFAULT_CHAOS_SEED
    # one workload execution shapes both chaos runs, so the determinism
    # check below compares the fault machinery alone
    profile = _make_profile(args)
    suite = None
    if args.monitors:
        from repro.recovery import MonitorSuite

        # collect mode: violations become counters, the run finishes
        suite = MonitorSuite(raise_on_violation=False)
        runner = ChaosRunner(
            args.workload, profile.write_ratio, seed=seed, ops=args.ops
        )
        runner.arm_monitors(suite)
        report = runner.run()
    else:
        report = run_chaos(
            args.workload, profile.write_ratio, seed=seed, ops=args.ops
        )
    print(report.format())
    monitor_violations = 0
    if suite is not None:
        from repro.platform.metrics import RunResult

        result = RunResult.from_chaos(report)
        result.record_recovery(suite.stats)
        monitor_violations = len(suite.records)
        counts = suite.violation_counts()
        print(
            f"  monitors        : {int(suite.stats.invariant_checks)} checks,"
            f" {monitor_violations} violations"
            + (
                " ("
                + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
                + ")"
                if counts
                else ""
            )
        )
        for record in suite.records:
            print(
                f"    violation[{record['monitor']}] {record['component']}:"
                f" {record['detail']}"
            )
        print(f"  run fingerprint : {result.fingerprint()}")
    if args.events:
        print("event log:")
        for line in report.event_log:
            print(f"  {line}")
    # the repeat run is always unarmed, so with --monitors this equality also
    # proves the armed suite is fingerprint-neutral
    repeat = run_chaos(args.workload, profile.write_ratio, seed=seed, ops=args.ops)
    deterministic = report.fingerprint() == repeat.fingerprint()
    print(f"deterministic: {'yes' if deterministic else 'NO — runs diverged'}")
    if not deterministic or report.invariant_violations or monitor_violations:
        return 1
    return 0


def cmd_soak(args: argparse.Namespace) -> int:
    if _check_workload(args.workload) is None:
        return 2
    if args.ops < 10:
        print("error: soak needs at least 10 operations (--ops)", file=sys.stderr)
        return 2
    if args.checkpoint_every < 1:
        print("error: --checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    from repro.recovery import (
        InvariantViolation,
        RecoveryStats,
        recovery_csv_rows,
        run_soak_campaigns,
    )

    seed = args.seed if args.seed is not None else DEFAULT_CHAOS_SEED
    profile = _make_profile(args)
    stats = RecoveryStats()
    try:
        exit_code, results = run_soak_campaigns(
            args.workload,
            profile.write_ratio,
            seed,
            args.ops,
            args.state_dir,
            campaigns=args.campaigns,
            checkpoint_every=args.checkpoint_every,
            kill_at=args.kill_at,
            monitors=not args.no_monitors,
            verify=args.verify,
            stats=stats,
            log=print,
        )
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION: {exc}", file=sys.stderr)
        return 1
    for name, value in sorted(stats.as_dict().items()):
        print(f"  {name:>22s} = {value}")
    if args.csv and results:
        with open(args.csv, "w") as fh:
            for row in recovery_csv_rows(results, stats):
                fh.write(",".join(row) + "\n")
        print(f"wrote {args.csv}")
    return exit_code


def cmd_oracle(args: argparse.Namespace) -> int:
    if _check_workload(args.workload) is None:
        return 2
    from repro.recovery import RecoveryStats, run_oracle

    seed = args.seed if args.seed is not None else DEFAULT_CHAOS_SEED
    profile = _make_profile(args)
    stats = RecoveryStats()
    report = run_oracle(
        args.workload,
        profile.write_ratio,
        base_seed=seed,
        seeds=args.seeds,
        points=args.points,
        ops=args.ops,
        stats=stats,
        progress=print if args.verbose else None,
    )
    print(report.format())
    for name, value in sorted(stats.as_dict().items()):
        print(f"  {name:>22s} = {value}")
    return 0 if report.all_passed else 1


def cmd_resilience(args: argparse.Namespace) -> int:
    if args.ops < 10:
        print("error: resilience needs at least 10 requests (--ops)", file=sys.stderr)
        return 2
    from repro.resilience import run_resilience

    seed = args.seed if args.seed is not None else DEFAULT_RESILIENCE_SEED
    ops = 600 if args.quick else args.ops
    report = run_resilience(seed=seed, ops=ops)
    print(report.format())
    if args.events:
        print("event log (policies on):")
        for line in report.resilient.event_log:
            print(f"  {line}")
    if args.csv:
        with open(args.csv, "w") as fh:
            for row in report.csv_rows():
                fh.write(",".join(row) + "\n")
        print(f"wrote {args.csv}")
    # the whole experiment must be a pure function of the seed: run it again
    # and require byte-identical reports
    repeat = run_resilience(seed=seed, ops=ops)
    deterministic = report.fingerprint() == repeat.fingerprint()
    print(f"deterministic: {'yes' if deterministic else 'NO — runs diverged'}")
    exit_code = 0
    if not deterministic:
        exit_code = 1
    threshold = args.min_availability / 100.0
    if report.resilient.availability < threshold:
        print(
            f"FAIL: policies-on availability "
            f"{report.resilient.availability * 100:.4f}% is below the "
            f"{args.min_availability:.2f}% floor",
            file=sys.stderr,
        )
        exit_code = 1
    if report.availability_gain() <= 0:
        print("FAIL: policies did not improve availability", file=sys.stderr)
        exit_code = 1
    return exit_code


def cmd_serve_lab(args: argparse.Namespace) -> int:
    if args.tenants < 1 or args.requests < 10:
        print(
            "error: serve-lab needs at least 1 tenant and 10 requests",
            file=sys.stderr,
        )
        return 2
    import json as json_module

    from repro.serve import run_serve_lab

    seed = args.seed if args.seed is not None else DEFAULT_SERVE_SEED
    tenants = 250 if args.quick else args.tenants
    requests = 1000 if args.quick else args.requests
    chaos = not args.no_chaos
    report = run_serve_lab(
        seed=seed,
        tenants=tenants,
        requests=requests,
        process=args.process,
        chaos=chaos,
    )
    print(report.format())
    if args.events:
        print("event log (policies on):")
        for line in report.attested.event_log:
            print(f"  {line}")
    if args.csv:
        with open(args.csv, "w") as fh:
            for row in report.csv_rows():
                fh.write(",".join(row) + "\n")
        print(f"wrote {args.csv}")
    if args.json:
        with open(args.json, "w") as fh:
            json_module.dump(report.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    # the whole campaign — handshakes, sealed envelopes, faults, retries —
    # must be a pure function of the seed: run it again and require
    # byte-identical fingerprints
    repeat = run_serve_lab(
        seed=seed,
        tenants=tenants,
        requests=requests,
        process=args.process,
        chaos=chaos,
    )
    deterministic = report.fingerprint() == repeat.fingerprint()
    print(f"deterministic: {'yes' if deterministic else 'NO — runs diverged'}")
    exit_code = 0
    if not deterministic:
        exit_code = 1
    if not report.attestation_gate_held():
        print(
            "FAIL: attestation gate leaked — tampered handshakes were not "
            "all refused (or none were exercised)",
            file=sys.stderr,
        )
        exit_code = 1
    threshold = args.min_availability / 100.0
    if report.attested.availability < threshold:
        print(
            f"FAIL: policies-on availability "
            f"{report.attested.availability * 100:.4f}% is below the "
            f"{args.min_availability:.2f}% floor",
            file=sys.stderr,
        )
        exit_code = 1
    if chaos and not report.policy_win:
        print(
            "FAIL: policies-on did not strictly beat policies-off",
            file=sys.stderr,
        )
        exit_code = 1
    return exit_code


def _run_fleet_arms(
    seed: int, requests: int, devices: int, replication: int, jobs: int
):
    """Both lab arms as fork-pool points (byte-identical at any --jobs)."""
    from repro.fleet import FleetReport
    from repro.perf.parallel import fleet_point, map_points

    specs = [
        fleet_point(seed, requests, devices, 1, False),
        fleet_point(seed, requests, devices, replication, True),
    ]
    off, on = map_points(specs, jobs=jobs)
    return FleetReport.from_arms(off, on)


def cmd_fleet_lab(args: argparse.Namespace) -> int:
    if args.requests < 10 or args.devices < 2:
        print(
            "error: fleet-lab needs at least 10 requests and 2 devices",
            file=sys.stderr,
        )
        return 2
    if not 1 <= args.replication <= args.devices:
        print(
            "error: --replication must lie in [1, --devices]", file=sys.stderr
        )
        return 2
    import json as json_module

    seed = args.seed if args.seed is not None else DEFAULT_FLEET_SEED
    requests = 600 if args.quick else args.requests
    report = _run_fleet_arms(
        seed, requests, args.devices, args.replication, args.jobs
    )
    print(report.format())
    if args.events:
        print("event log (replication on):")
        for line in report.on.event_log:
            print(f"  {line}")
    if args.csv:
        with open(args.csv, "w") as fh:
            rows = report.csv_rows()
            fh.write(",".join(rows[0].keys()) + "\n")
            for row in rows:
                fh.write(",".join(row.values()) + "\n")
        print(f"wrote {args.csv}")
    if args.json:
        with open(args.json, "w") as fh:
            json_module.dump(report.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    # the whole campaign — placement, chaos, hedging, rebuild — must be a
    # pure function of the seed: run it again and require byte-identical
    # fingerprints (at --jobs N this also proves fork-pool identity)
    repeat = _run_fleet_arms(
        seed, requests, args.devices, args.replication, args.jobs
    )
    deterministic = report.fingerprint() == repeat.fingerprint()
    print(f"deterministic: {'yes' if deterministic else 'NO — runs diverged'}")
    exit_code = 0
    if not deterministic:
        exit_code = 1
    threshold = args.min_availability / 100.0
    if report.on.availability < threshold:
        print(
            f"FAIL: replication-on availability "
            f"{report.on.availability * 100:.4f}% is below the "
            f"{args.min_availability:.2f}% floor",
            file=sys.stderr,
        )
        exit_code = 1
    if not report.policy_win:
        print(
            "FAIL: replication-on did not strictly beat replication-off "
            "on availability and p99",
            file=sys.stderr,
        )
        exit_code = 1
    return exit_code


def cmd_search(args: argparse.Namespace) -> int:
    from repro.search import (
        SearchConfig,
        build_corpus,
        replay_path,
        run_search,
        save_corpus,
    )
    from repro.search.genome import TARGETS

    if args.replay:
        try:
            report = replay_path(args.replay)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.format())
        if not report.all_reproduced:
            print("FAIL: corpus entries did not reproduce", file=sys.stderr)
            return 1
        return 0

    targets = tuple(t.strip() for t in args.targets.split(",") if t.strip())
    unknown = sorted(set(targets) - set(TARGETS))
    if unknown:
        print(
            f"error: unknown targets {', '.join(unknown)} "
            f"(known: {', '.join(TARGETS)})",
            file=sys.stderr,
        )
        return 2
    if args.budget < 1:
        print("error: --budget must be positive", file=sys.stderr)
        return 2
    seed = args.seed if args.seed is not None else DEFAULT_SEARCH_SEED
    config = SearchConfig(
        budget_ops=args.budget, targets=targets, shrink=not args.no_shrink
    )
    result = run_search(seed, config)
    for line in result.log:
        print(line)
    stats = result.stats
    print(
        f"search seed={seed}: {stats.evaluations} evaluations"
        f" ({stats.dedup_hits} deduped), {stats.sim_ops_spent} sim-ops,"
        f" {len(result.hits)} hits, {len(result.minimal)} shrunk"
    )
    for hit in result.hits[:5]:
        objectives = ", ".join(
            f"{name}={score:g}" for name, score in sorted(hit.objectives.items())
        )
        print(f"  hit {hit.scenario.fingerprint()[:12]}: {objectives}")
        print(f"      {hit.scenario.describe()}")
    for fingerprint, shrunk in sorted(result.minimal.items()):
        print(
            f"  minimal {shrunk.scenario.fingerprint()[:12]}"
            f" (from {fingerprint[:12]}): {shrunk.objective}={shrunk.score:g}"
        )
        print(f"      {shrunk.scenario.describe()}")
    document = build_corpus(result)
    out = save_corpus(document, args.out)
    print(f"wrote {out} (fingerprint {document['fingerprint']})")
    if not result.hits:
        print("FAIL: no scoring scenario found within budget", file=sys.stderr)
        return 1
    return 0


def cmd_fleet_oracle(args: argparse.Namespace) -> int:
    from repro.fleet import run_fleet_oracle

    seed = args.seed if args.seed is not None else DEFAULT_FLEET_SEED
    report = run_fleet_oracle(
        base_seed=seed,
        seeds=args.seeds,
        points=args.points,
        requests=args.requests,
        devices=args.devices,
        progress=print if args.verbose else None,
    )
    print(report.format())
    return 0 if report.all_passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IceClave (MICRO 2021) reproduction: run paper experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and schemes").set_defaults(func=cmd_list)

    info = sub.add_parser("info", help="show the platform configuration")
    _add_config_flags(info)
    info.set_defaults(func=cmd_info)

    run = sub.add_parser("run", help="run one workload on one scheme")
    run.add_argument("workload")
    run.add_argument("--scheme", default="iceclave", choices=sorted(SCHEMES))
    run.add_argument("--verbose", "-v", action="store_true", help="print run stats")
    _add_config_flags(run)
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="run all four schemes")
    compare.add_argument("workload")
    _add_config_flags(compare)
    _add_jobs_flag(compare)
    compare.set_defaults(func=cmd_compare)

    sweep = sub.add_parser("sweep", help="sensitivity sweep (Figs 12/14/16)")
    sweep.add_argument("parameter", choices=("channels", "latency", "dram"))
    sweep.add_argument("workload")
    _add_config_flags(sweep)
    _add_jobs_flag(sweep)
    sweep.set_defaults(func=cmd_sweep)

    prof = sub.add_parser(
        "profile",
        help="cProfile one workload run plus simulator-side counters",
    )
    prof.add_argument("workload")
    prof.add_argument("--scheme", default="iceclave", choices=sorted(SCHEMES))
    prof.add_argument("--top", type=int, default=25, help="profile rows to print")
    prof.add_argument(
        "--sort", default="cumulative", choices=("cumulative", "tottime", "ncalls")
    )
    prof.add_argument(
        "--top-allocs", type=int, default=0, metavar="N",
        help="also trace allocations (tracemalloc) and print the top N sites",
    )
    _add_config_flags(prof)
    prof.set_defaults(func=cmd_profile)

    bench = sub.add_parser(
        "bench",
        help="measure the benchmark trajectory and write BENCH_<n>.json",
    )
    bench.add_argument(
        "--quick", action="store_true", help="smaller parameters for CI smoke"
    )
    bench.add_argument(
        "--out", default=".", help="directory for BENCH_<n>.json (default .)"
    )
    bench.add_argument(
        "--check", metavar="BASELINE",
        help="fail (exit 1) on >25%% calibration-normalized regression vs this file",
    )
    bench.add_argument(
        "--compare", nargs=2, metavar=("BASELINE", "CURRENT"),
        help="compare two existing BENCH_<n>.json files (no new measurement)",
    )
    bench.add_argument(
        "--compare-json", metavar="PATH",
        help="with --compare: also write the comparison as JSON",
    )
    _add_jobs_flag(bench)
    bench.set_defaults(func=cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="static analysis: determinism, security-flow, sim-time, resilience rules",
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=run_lint)

    chaos = sub.add_parser(
        "chaos", help="run a workload-shaped fault-injection campaign"
    )
    chaos.add_argument("workload")
    chaos.add_argument(
        "--ops", type=int, default=3000, help="chaos I/O operations (default 3000)"
    )
    chaos.add_argument(
        "--events", "-e", action="store_true", help="print the full fault event log"
    )
    chaos.add_argument(
        "--monitors", action="store_true",
        help="arm the runtime invariant monitors in collect mode: violations "
        "become structured counters and a nonzero exit, the fingerprint is "
        "unchanged",
    )
    _add_config_flags(chaos)
    chaos.set_defaults(func=cmd_chaos)

    soak = sub.add_parser(
        "soak",
        help="resumable checkpointed chaos campaign (restarts from the newest snapshot)",
    )
    soak.add_argument("workload")
    soak.add_argument(
        "--ops", type=int, default=3000, help="operations per campaign (default 3000)"
    )
    soak.add_argument(
        "--checkpoint-every", type=int, default=200,
        help="operations between snapshots (default 200)",
    )
    soak.add_argument(
        "--state-dir", default=".soak-state",
        help="directory for snapshots and results.json (default .soak-state)",
    )
    soak.add_argument(
        "--campaigns", type=int, default=1,
        help="consecutive seeds to run (completed seeds are skipped on rerun)",
    )
    soak.add_argument(
        "--kill-at", type=int,
        help="simulate a host crash: exit 75 without checkpointing at this op",
    )
    soak.add_argument(
        "--verify", action="store_true",
        help="also run uninterrupted in memory and require identical fingerprints",
    )
    soak.add_argument(
        "--no-monitors", action="store_true",
        help="disable the runtime invariant monitors (they are on by default)",
    )
    soak.add_argument(
        "--csv", metavar="PATH", help="write the recovery counters as CSV"
    )
    _add_config_flags(soak)
    soak.set_defaults(func=cmd_soak)

    oracle = sub.add_parser(
        "oracle",
        help="crash-point differential oracle: snapshot/kill/restore must be byte-identical",
    )
    oracle.add_argument("workload")
    oracle.add_argument(
        "--ops", type=int, default=1200, help="operations per campaign (default 1200)"
    )
    oracle.add_argument(
        "--seeds", type=int, default=3, help="consecutive seeds to sweep (default 3)"
    )
    oracle.add_argument(
        "--points", type=int, default=9,
        help="crash points per seed (default 9; 3 seeds x 9 points = 27)",
    )
    oracle.add_argument(
        "--verbose", "-v", action="store_true", help="print each crash point's verdict"
    )
    _add_config_flags(oracle)
    oracle.set_defaults(func=cmd_oracle)

    resilience = sub.add_parser(
        "resilience",
        help="availability experiment: chaos plan with/without resilience policies",
    )
    resilience.add_argument(
        "--ops", type=int, default=2000, help="requests per arm (default 2000)"
    )
    resilience.add_argument(
        "--quick", action="store_true", help="small run for CI smoke (600 requests)"
    )
    resilience.add_argument(
        "--min-availability",
        type=float,
        default=99.0,
        help="fail (exit 1) if policies-on availability drops below this %% (default 99)",
    )
    resilience.add_argument(
        "--csv", metavar="PATH", help="write the per-arm SLO summary as CSV"
    )
    resilience.add_argument(
        "--events", "-e", action="store_true",
        help="print the policies-on fault/transition log",
    )
    resilience.add_argument(
        "--seed", type=int, help="deterministic seed for the fault plan and arrivals"
    )
    resilience.set_defaults(func=cmd_resilience)

    serve = sub.add_parser(
        "serve-lab",
        help="attested multi-tenant serving campaign: policies on vs off under chaos",
    )
    serve.add_argument(
        "--tenants", type=int, default=1000, help="tenant count (default 1000)"
    )
    serve.add_argument(
        "--requests", type=int, default=4000,
        help="total requests per arm (default 4000)",
    )
    serve.add_argument(
        "--process", choices=("poisson", "bursty"), default="poisson",
        help="open-loop arrival process (default poisson)",
    )
    serve.add_argument(
        "--no-chaos", action="store_true", help="disable the seeded fault plan"
    )
    serve.add_argument(
        "--quick", action="store_true",
        help="small run for CI smoke (250 tenants, 1000 requests)",
    )
    serve.add_argument(
        "--min-availability",
        type=float,
        default=99.0,
        help="fail (exit 1) if policies-on availability drops below this %% (default 99)",
    )
    serve.add_argument(
        "--csv", metavar="PATH", help="write the campaign summary as CSV"
    )
    serve.add_argument(
        "--json", metavar="PATH", help="write the full SLO report as JSON"
    )
    serve.add_argument(
        "--events", "-e", action="store_true",
        help="print the policies-on fault/transition log",
    )
    serve.add_argument(
        "--seed", type=int,
        help="deterministic seed for tenants, arrivals, faults and crypto",
    )
    serve.set_defaults(func=cmd_serve_lab)

    fleet = sub.add_parser(
        "fleet-lab",
        help="sharded multi-SSD campaign: replication on vs off under device chaos",
    )
    fleet.add_argument(
        "--requests", type=int, default=2000,
        help="requests per arm (default 2000)",
    )
    fleet.add_argument(
        "--devices", type=int, default=6, help="fleet size (default 6)"
    )
    fleet.add_argument(
        "--replication", type=int, default=2,
        help="replica count for the policies-on arm (default 2)",
    )
    fleet.add_argument(
        "--quick", action="store_true", help="small run for CI smoke (600 requests)"
    )
    fleet.add_argument(
        "--min-availability",
        type=float,
        default=99.0,
        help="fail (exit 1) if replication-on availability drops below this %% (default 99)",
    )
    fleet.add_argument(
        "--csv", metavar="PATH", help="write the per-arm summary as CSV"
    )
    fleet.add_argument(
        "--json", metavar="PATH", help="write the full fleet report as JSON"
    )
    fleet.add_argument(
        "--events", "-e", action="store_true",
        help="print the replication-on chaos/rebuild log",
    )
    fleet.add_argument(
        "--seed", type=int,
        help="deterministic seed for placement, arrivals and the chaos plan",
    )
    _add_jobs_flag(fleet)
    fleet.set_defaults(func=cmd_fleet_lab)

    search = sub.add_parser(
        "search",
        help="adversarial scenario search over the fault x workload x config space",
    )
    search.add_argument(
        "--budget", type=int, default=20_000,
        help="simulated-operation budget for the ascent (default 20000)",
    )
    search.add_argument(
        "--targets", default="chaos,resilience",
        help="comma-separated campaign targets "
        "(chaos, fleet, oracle, resilience, serve; default chaos,resilience)",
    )
    search.add_argument(
        "--out", default="search-corpus.json",
        help="corpus output path (default search-corpus.json)",
    )
    search.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging hits down to minimal repros",
    )
    search.add_argument(
        "--replay", metavar="CORPUS",
        help="replay an existing corpus instead of searching; every entry "
        "must reproduce its objective with a byte-identical run fingerprint",
    )
    search.add_argument(
        "--seed", type=int,
        help="deterministic seed for the whole campaign (default 7)",
    )
    search.set_defaults(func=cmd_search)

    fleet_oracle = sub.add_parser(
        "fleet-oracle",
        help="fleet crash-point oracle: kill mid-rebuild, restore, fingerprints must match",
    )
    fleet_oracle.add_argument(
        "--requests", type=int, default=400,
        help="requests per campaign (default 400)",
    )
    fleet_oracle.add_argument(
        "--devices", type=int, default=6, help="fleet size (default 6)"
    )
    fleet_oracle.add_argument(
        "--seeds", type=int, default=2, help="consecutive seeds to sweep (default 2)"
    )
    fleet_oracle.add_argument(
        "--points", type=int, default=7, help="crash points per seed (default 7)"
    )
    fleet_oracle.add_argument(
        "--verbose", "-v", action="store_true",
        help="print each crash point's verdict",
    )
    fleet_oracle.add_argument(
        "--seed", type=int, help="base seed for the sweep"
    )
    fleet_oracle.set_defaults(func=cmd_fleet_oracle)
    return parser


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for independent experiment points (default 1; "
        "results are byte-identical to serial at any value)",
    )


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--channels", type=int, help="flash channels (default 8)")
    parser.add_argument("--dram-gb", type=int, help="SSD DRAM capacity in GB")
    parser.add_argument("--dataset-gb", type=int, help="dataset size in GB (default 32)")
    parser.add_argument("--flash-latency-us", type=float, help="flash read latency")
    parser.add_argument(
        "--seed", type=int, help="deterministic seed for workload generation and faults"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "seed", None) is not None and args.seed < 0:
        print("error: --seed must be a non-negative integer", file=sys.stderr)
        return 2
    if getattr(args, "jobs", None) is not None and args.jobs < 1:
        print("error: --jobs must be a positive integer", file=sys.stderr)
        return 2
    try:
        return args.func(args)
    except BrokenPipeError:
        # output piped into a closed reader (e.g. `| head`): exit quietly
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
