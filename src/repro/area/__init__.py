"""CACTI-style area and energy estimation (§5's 1.6% area claim)."""

from repro.area.cacti import AreaModel, CipherEngineArea, TechnologyNode

__all__ = ["AreaModel", "CipherEngineArea", "TechnologyNode"]
