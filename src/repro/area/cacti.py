"""Simplified CACTI-style area/energy model.

The paper uses CACTI 6.5 to estimate that the stream-cipher engine adds
about **1.6% area** to a modern SSD controller (Intel DC P4500 class).
This module reproduces that estimate from first principles: SRAM density
and logic gate density at a given technology node, composed into the
cipher engine's building blocks (per-channel Trivium cores, page buffers,
key/IV registers, and control).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.sim.stats import register_memo

KIB = 1024


@dataclass(frozen=True)
class TechnologyNode:
    """Density figures for one process node (planar, CACTI-flavoured)."""

    name: str
    sram_mm2_per_kib: float  # 6T SRAM incl. periphery
    logic_mm2_per_kgate: float  # NAND2-equivalent gates
    sram_pj_per_access: float  # 64B access energy
    logic_pj_per_gate_cycle: float


# calibrated against published CACTI 6.5 numbers for these nodes
NODE_45NM = TechnologyNode("45nm", 0.0210, 0.00085, 18.0, 0.0035)
NODE_32NM = TechnologyNode("32nm", 0.0125, 0.00048, 12.0, 0.0022)
NODE_22NM = TechnologyNode("22nm", 0.0072, 0.00027, 8.0, 0.0014)


@dataclass(frozen=True)
class AreaModel:
    """Area accounting for a block made of SRAM and random logic."""

    node: TechnologyNode

    def sram_area(self, kib: float) -> float:
        if kib < 0:
            raise ValueError("capacity must be non-negative")
        return kib * self.node.sram_mm2_per_kib

    def logic_area(self, kgates: float) -> float:
        if kgates < 0:
            raise ValueError("gate count must be non-negative")
        return kgates * self.node.logic_mm2_per_kgate

    def sram_energy(self, accesses: float) -> float:
        """Energy in pJ for N 64-byte SRAM accesses."""
        return accesses * self.node.sram_pj_per_access

    def logic_energy(self, kgates: float, cycles: float) -> float:
        """Energy in pJ for a logic block switching over N cycles."""
        return kgates * 1000 * cycles * self.node.logic_pj_per_gate_cycle


# Trivium in hardware is ~2.6 kGE for the 288-bit state plus 64-bit/cycle
# output network; add IV/key registers and handshake control.
TRIVIUM_CORE_KGATES = 3.2
CONTROL_KGATES_PER_CHANNEL = 1.5
PAGE_BUFFER_KIB_PER_CHANNEL = 8  # double-buffered 4 KB pages


@lru_cache(maxsize=None)
def engine_mm2_for(channels: int, node: TechnologyNode) -> float:
    """Cipher-engine area for one (channel count, node) point.

    Pure lookup over frozen inputs; energy/area sweeps query the same few
    points thousands of times.
    """
    model = AreaModel(node)
    per_channel = (
        model.logic_area(TRIVIUM_CORE_KGATES + CONTROL_KGATES_PER_CHANNEL)
        + model.sram_area(PAGE_BUFFER_KIB_PER_CHANNEL)
    )
    shared = model.logic_area(4.0)  # key store, PRNG, config registers
    return channels * per_channel + shared


@lru_cache(maxsize=None)
def page_energy_pj_for(node: TechnologyNode, page_bytes: int, bits_per_cycle: int) -> float:
    """Per-page cipher energy for one (node, page, width) point."""
    model = AreaModel(node)
    cycles = page_bytes * 8 / bits_per_cycle
    logic = model.logic_energy(TRIVIUM_CORE_KGATES, cycles)
    buffers = model.sram_energy(2 * page_bytes / 64)  # in + out buffer
    return logic + buffers


register_memo("area.cacti.engine_mm2", engine_mm2_for)
register_memo("area.cacti.page_energy", page_energy_pj_for)


@dataclass(frozen=True)
class CipherEngineArea:
    """Stream-cipher engine area vs. the SSD controller (§5)."""

    channels: int = 8
    node: TechnologyNode = NODE_32NM
    controller_mm2: float = 60.0  # Intel DC P4500-class controller die

    def engine_mm2(self) -> float:
        return engine_mm2_for(self.channels, self.node)

    def overhead_fraction(self) -> float:
        """Engine area as a fraction of the controller die (paper: 1.6%)."""
        return self.engine_mm2() / self.controller_mm2

    def energy_per_page_pj(self, page_bytes: int = 4096, bits_per_cycle: int = 64) -> float:
        """Dynamic energy to cipher one flash page."""
        return page_energy_pj_for(self.node, page_bytes, bits_per_cycle)
