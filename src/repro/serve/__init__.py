"""repro.serve: the attested multi-tenant offload service.

The serving layer on top of the IceClave host library: nonce-challenged
remote attestation establishes per-session keys (:mod:`.session`), an
asyncio front-end dispatches sealed requests through admission control,
circuit breakers and the degradation ladder (:mod:`.service`), and an
open-loop load generator plus SLO lab measure the whole stack under
seeded multi-tenant traffic and chaos plans (:mod:`.loadgen`, :mod:`.lab`).

See docs/SERVING.md for the handshake sequence, wire schema, and error
taxonomy.
"""

from repro.serve.lab import (
    ServeArmReport,
    ServeLabConfig,
    ServeLabReport,
    run_serve_lab,
)
from repro.serve.loadgen import (
    Arrival,
    ArrivalConfig,
    TenantProfile,
    generate_arrivals,
    make_tenants,
)
from repro.serve.service import DataPathFault, OffloadService, Served, TickClock
from repro.serve.session import (
    AttestClient,
    ClientSession,
    SecureChannel,
    ServerSessionManager,
    SessionError,
)
from repro.serve.wire import (
    AttestChallenge,
    AttestGrant,
    Reply,
    Request,
    SealedEnvelope,
    WireStatus,
    retry_after_for,
    status_for_mode,
    status_for_nvme,
)

__all__ = [
    "Arrival",
    "ArrivalConfig",
    "AttestChallenge",
    "AttestClient",
    "AttestGrant",
    "ClientSession",
    "DataPathFault",
    "OffloadService",
    "Reply",
    "Request",
    "SealedEnvelope",
    "SecureChannel",
    "Served",
    "ServeArmReport",
    "ServeLabConfig",
    "ServeLabReport",
    "ServerSessionManager",
    "SessionError",
    "TenantProfile",
    "TickClock",
    "WireStatus",
    "generate_arrivals",
    "make_tenants",
    "retry_after_for",
    "run_serve_lab",
    "status_for_mode",
    "status_for_nvme",
]
