"""Wire protocol for the attested offload service.

Everything that crosses the host↔service boundary is defined here: the
typed status taxonomy, the request/reply records with a canonical byte
encoding (what the secure channel seals), and the attestation handshake
messages. The encoding is deliberately primitive — length-prefixed fields,
big-endian integers — so two runs of the same campaign serialize every
message byte-identically and the lab's fingerprints stay stable.

Error taxonomy (see docs/SERVING.md):

- ``RETRYABLE`` statuses carry a ``retry_after_s`` hint; a well-behaved
  client backs off for the hint (bounded by its own deadline) instead of
  hammering a throttled or degraded device;
- terminal statuses (``READ_ERROR``, ``ACCESS_DENIED``, ``AUTH_FAILED``…)
  mean retrying the same request cannot help.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.host.nvme import NvmeStatus


class WireStatus(enum.Enum):
    """Typed wire-level outcome of one service request."""

    OK = "ok"
    THROTTLED = "throttled"  # admission shed: token bucket / queue depth
    DEGRADED_READONLY = "degraded_readonly"  # writes refused, reads still served
    FAILSAFE = "failsafe"  # device failsafe: offloads and reads refused
    TIMEOUT = "timeout"  # command aborted by the sim-time timeout
    READ_ERROR = "read_error"  # unrecovered media error
    WRITE_ERROR = "write_error"  # write fault (integrity window, media)
    ACCESS_DENIED = "access_denied"  # ID-bit / permission refusal
    RESOURCE_EXHAUSTED = "resource_exhausted"  # TEE IDs / DRAM exhausted
    AUTH_FAILED = "auth_failed"  # envelope MAC or sequence check failed
    UNKNOWN_SESSION = "unknown_session"  # no established session for the id
    BAD_REQUEST = "bad_request"  # undecodable or malformed request
    REPLICA_EXHAUSTED = "replica_exhausted"  # every fleet replica attempt failed
    UNDER_REPLICATED = "under_replicated"  # write quorum missed; rebuild pending
    INTERNAL = "internal"  # anything the mapping does not name


# statuses a client may retry without risking duplicated side effects
RETRYABLE: frozenset = frozenset(
    {
        WireStatus.THROTTLED,
        WireStatus.DEGRADED_READONLY,
        WireStatus.FAILSAFE,
        WireStatus.TIMEOUT,
        WireStatus.RESOURCE_EXHAUSTED,
        WireStatus.REPLICA_EXHAUSTED,
        WireStatus.UNDER_REPLICATED,
    }
)

# per-status backoff hints (sim-seconds); the service stamps these into
# replies so clients need no local policy table
DEFAULT_RETRY_AFTER_S: Dict[WireStatus, float] = {
    WireStatus.THROTTLED: 200e-6,
    WireStatus.DEGRADED_READONLY: 800e-6,
    WireStatus.FAILSAFE: 1500e-6,
    WireStatus.TIMEOUT: 400e-6,
    WireStatus.RESOURCE_EXHAUSTED: 600e-6,
    # fleet refusals: breakers reopen and rebuild restores replicas on the
    # sub-millisecond scale, so the hints sit above one breaker probe window
    WireStatus.REPLICA_EXHAUSTED: 900e-6,
    WireStatus.UNDER_REPLICATED: 1200e-6,
}


def retry_after_for(status: WireStatus) -> float:
    """The backoff hint for ``status`` (0.0 for terminal statuses)."""
    return DEFAULT_RETRY_AFTER_S.get(status, 0.0)


_NVME_TO_WIRE: Dict[NvmeStatus, WireStatus] = {
    NvmeStatus.SUCCESS: WireStatus.OK,
    NvmeStatus.COMMAND_INTERRUPTED: WireStatus.THROTTLED,
    NvmeStatus.COMMAND_ABORTED: WireStatus.TIMEOUT,
    NvmeStatus.UNRECOVERED_READ_ERROR: WireStatus.READ_ERROR,
    NvmeStatus.WRITE_FAULT: WireStatus.WRITE_ERROR,
    NvmeStatus.ACCESS_DENIED: WireStatus.ACCESS_DENIED,
    NvmeStatus.LBA_OUT_OF_RANGE: WireStatus.BAD_REQUEST,
    NvmeStatus.INTERNAL_ERROR: WireStatus.INTERNAL,
}


def status_for_nvme(status: NvmeStatus) -> WireStatus:
    """Map an NVMe completion status onto the wire taxonomy."""
    return _NVME_TO_WIRE.get(status, WireStatus.INTERNAL)


_FLEET_TO_WIRE: Dict[str, WireStatus] = {
    "replica_exhausted": WireStatus.REPLICA_EXHAUSTED,
    "under_replicated": WireStatus.UNDER_REPLICATED,
    "read_error": WireStatus.READ_ERROR,
}


def status_for_fleet(kind: str) -> WireStatus:
    """Map a fleet refusal kind onto the wire taxonomy.

    ``replica_exhausted``/``under_replicated`` are retryable — breakers
    reopen and background rebuild restores lost replicas — while
    ``read_error`` (no surviving replica) is terminal.
    """
    return _FLEET_TO_WIRE.get(kind, WireStatus.INTERNAL)


def status_for_mode(mode: str) -> WireStatus:
    """Map a degradation-ladder service mode onto the refusal status."""
    if mode == "degraded_readonly":
        return WireStatus.DEGRADED_READONLY
    if mode == "failsafe":
        return WireStatus.FAILSAFE
    return WireStatus.INTERNAL


# -- canonical field encoding -------------------------------------------------


def _pack(*fields: bytes) -> bytes:
    out = bytearray()
    for f in fields:
        out.extend(len(f).to_bytes(4, "big"))
        out.extend(f)
    return bytes(out)


def _unpack(blob: bytes, count: int) -> Tuple[bytes, ...]:
    fields = []
    offset = 0
    for _ in range(count):
        if offset + 4 > len(blob):
            raise ValueError("truncated wire message")
        n = int.from_bytes(blob[offset:offset + 4], "big")
        offset += 4
        if offset + n > len(blob):
            raise ValueError("truncated wire message field")
        fields.append(blob[offset:offset + n])
        offset += n
    if offset != len(blob):
        raise ValueError("trailing bytes after wire message")
    return tuple(fields)


OPS = ("read", "write", "offload")


@dataclass(frozen=True)
class Request:
    """One client request: an op class over declared logical pages."""

    op: str  # "read" | "write" | "offload"
    lpas: Tuple[int, ...]
    payload: bytes = b""

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown op {self.op!r} (expected one of {OPS})")
        if not self.lpas:
            raise ValueError("a request must declare at least one LPA")

    def encode(self) -> bytes:
        lpa_blob = b"".join(lpa.to_bytes(8, "big") for lpa in self.lpas)
        return _pack(self.op.encode("ascii"), lpa_blob, self.payload)

    @classmethod
    def decode(cls, blob: bytes) -> "Request":
        op, lpa_blob, payload = _unpack(blob, 3)
        if len(lpa_blob) % 8:
            raise ValueError("LPA field is not a multiple of 8 bytes")
        lpas = tuple(
            int.from_bytes(lpa_blob[i:i + 8], "big")
            for i in range(0, len(lpa_blob), 8)
        )
        return cls(op=op.decode("ascii"), lpas=lpas, payload=payload)


@dataclass(frozen=True)
class Reply:
    """The service's typed answer to one request."""

    status: WireStatus
    retry_after_s: float = 0.0
    payload: bytes = b""
    mode: str = "normal"  # device service mode at reply time

    @property
    def ok(self) -> bool:
        return self.status is WireStatus.OK

    @property
    def retryable(self) -> bool:
        return self.status in RETRYABLE

    def encode(self) -> bytes:
        return _pack(
            self.status.value.encode("ascii"),
            repr(self.retry_after_s).encode("ascii"),
            self.payload,
            self.mode.encode("ascii"),
        )

    @classmethod
    def decode(cls, blob: bytes) -> "Reply":
        status, retry_after, payload, mode = _unpack(blob, 4)
        return cls(
            status=WireStatus(status.decode("ascii")),
            retry_after_s=float(retry_after.decode("ascii")),
            payload=payload,
            mode=mode.decode("ascii"),
        )


# -- handshake messages -------------------------------------------------------


@dataclass(frozen=True)
class AttestChallenge:
    """Client → server: attest yourself against this fresh nonce."""

    client_id: int
    nonce: bytes


@dataclass(frozen=True)
class AttestGrant:
    """Server → client: the quote answering the challenge, plus the
    session id under which sealed requests will be accepted."""

    session_id: int
    quote: object  # repro.core.attestation.Quote (opaque at the wire layer)


@dataclass(frozen=True)
class SealedEnvelope:
    """An encrypted, authenticated wire message on an established session.

    ``channel`` is the direction label (``b"c2s"`` / ``b"s2c"``) and ``seq``
    the per-direction monotonic sequence number; both are bound into the
    MAC so a recorded envelope cannot be replayed or reflected.
    """

    session_id: int
    channel: bytes
    seq: int
    ciphertext: bytes
    tag: bytes


__all__ = [
    "AttestChallenge",
    "AttestGrant",
    "DEFAULT_RETRY_AFTER_S",
    "OPS",
    "Reply",
    "Request",
    "RETRYABLE",
    "SealedEnvelope",
    "WireStatus",
    "retry_after_for",
    "status_for_fleet",
    "status_for_mode",
    "status_for_nvme",
]
