"""The serve lab: attested multi-tenant serving as an SLO experiment.

Where the resilience lab asks "does the *service* survive faults?", this
lab asks the multi-tenant question on top: "does every *tenant* keep their
SLO, and does the attestation gate hold, under realistic open-loop
traffic?" It drives a seeded arrival schedule (Poisson or bursty, see
:mod:`repro.serve.loadgen`) over thousands of tenants through the full
:class:`~repro.serve.service.OffloadService` stack — nonce-challenged
attestation handshakes, sealed envelopes on every request, token-bucket
admission, per-channel circuit breakers, and the degradation ladder —
while a deterministic :class:`~repro.faults.plan.FaultPlan` degrades the
device underneath.

Two arms share byte-identical traffic, faults, and crypto:

- **policies off** — no admission, no breakers, no ladder, no retries: a
  request that hits a fault window surfaces the error to the tenant;
- **policies on** — the full gate order, with clients honouring the typed
  retry-after hints (bounded by attempts and a request deadline).

Attestation is *not* a policy — it is on in both arms. Tampered tenants
(their handshakes answered by a deployment running trojaned code) are
refused at session establishment in both arms and never reach the SLO
ledger; the lab counts them separately so the CLI can assert that refusals
equal the planted tampered population exactly.

Determinism: arrivals, tenant mix, fault schedule, channel jitter and the
session crypto are all pure functions of the seed; the asyncio front-end
runs a single pump draining a FIFO inbox, so two same-seed campaigns
produce byte-identical fingerprints — the CLI proves it on every run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.attestation import AttestationDevice, AttestationVerifier
from repro.core.config import MIB, IceClaveConfig
from repro.core.runtime import IceClaveRuntime
from repro.crypto.prng import XorShift64
from repro.faults.plan import FaultKind, FaultPlan, FaultPlanConfig
from repro.flash import FlashChip
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl
from repro.host.library import IceClaveLibrary
from repro.host.nvme import NvmeStatus
from repro.platform.metrics import SloBoard, SloObjectives
from repro.resilience.admission import AdmissionConfig, AdmissionController
from repro.resilience.breaker import BreakerBoard, BreakerConfig
from repro.resilience.degrade import DegradationLadder, DegradeConfig
from repro.serve.loadgen import (
    Arrival,
    ArrivalConfig,
    TenantProfile,
    generate_arrivals,
    make_tenants,
)
from repro.serve.service import DataPathFault, OffloadService, TickClock
from repro.serve.session import (
    AttestClient,
    ClientSession,
    ServerSessionManager,
    try_handshake,
)
from repro.serve.wire import RETRYABLE, Reply, Request, SealedEnvelope, WireStatus

# what the policies-on client will retry: the hinted statuses, plus media
# errors — the device mirrors every page on a replica channel, so a
# bounded re-read/re-write is sound even though NVMe marks them terminal
_CLIENT_RETRYABLE = RETRYABLE | {WireStatus.READ_ERROR, WireStatus.WRITE_ERROR}

DEVICE_SECRET = b"serve-lab-vendor-secret-0001"
GENUINE_BINARY = b"\x7fICE-serve" + b"\x90" * 96
TROJANED_BINARY = b"\x7fEVIL-serve" + b"\xcc" * 96


@dataclass(frozen=True)
class ServeLabConfig:
    """Shape of one serve experiment (both arms share it)."""

    tenants: int = 1000
    requests: int = 4000
    channels: int = 4
    working_set: int = 256
    tampered_fraction: float = 0.01
    offload_every: int = 64  # every Nth request becomes a TEE offload
    arrival: ArrivalConfig = ArrivalConfig()
    chaos: bool = True
    # device-side service model
    base_read_s: float = 80e-6
    base_write_s: float = 120e-6
    jitter_s: float = 30e-6
    # fault translation
    storm_window_s: float = 1.5e-3
    storm_factor: float = 6.0
    storm_errors: int = 3
    integrity_window_s: float = 2.5e-3
    stall_s: float = 1.0e-3
    die_down_s: float = 4e-3
    # client behaviour (policies-on arm)
    command_timeout_s: float = 600e-6
    stuck_latency_s: float = 8e-3  # what a hung die costs with no timeout
    max_attempts: int = 6
    request_deadline_s: float = 25e-3

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.requests < 1:
            raise ValueError("need at least one tenant and one request")
        if self.channels < 2:
            raise ValueError("the replica scheme needs at least two channels")
        if self.offload_every < 2:
            raise ValueError("offload_every must be >= 2")


def serve_plan_config(requests: int = 4000) -> FaultPlanConfig:
    """The fault mix the serve lab schedules (heavier on service-visible
    faults than the storage-centric default).

    Counts scale with the campaign length so fault *density* per request
    stays constant: the open-loop schedule spans time proportional to the
    request count, and a fixed-size plan squeezed into a short campaign
    would keep the device degraded for most of the run.
    """
    scale = requests / 4000.0

    def scaled(base: int) -> int:
        return max(1, int(round(base * scale)))

    return FaultPlanConfig(
        read_bursts=scaled(8),
        uncorrectable_pages=scaled(4),
        hard_uncorrectables=scaled(2),
        die_failures=scaled(2),
        dram_corruptions=scaled(3),
        power_losses=scaled(1),
        power_losses_mid_gc=scaled(1),
    )


@dataclass
class _ChannelState:
    """Fault-visible state of one device channel."""

    index: int
    rng: XorShift64
    slow_until: float = -1.0
    slow_factor: float = 1.0
    dead_until: float = -1.0
    error_credits: int = 0


@dataclass(order=True)
class _AgendaItem:
    """One scheduled client action (arrival or retry), heap-ordered."""

    at_s: float
    seq: int
    arrival: Arrival = field(compare=False)
    op: str = field(compare=False, default="read")
    attempts: int = field(compare=False, default=0)
    first_start: float = field(compare=False, default=0.0)


@dataclass
class ServeArmReport:
    """Outcome of one arm (policies on or off)."""

    policies: str
    requests: int
    failures: int
    availability: float
    p50_read_s: float
    p99_read_s: float
    sessions_established: int
    sessions_refused: int
    tampered_attempted: int  # tampered tenants that actually handshook
    requests_blocked_unattested: int
    tenants_served: int
    tenants_out_of_budget: int
    counters: Dict[str, int] = field(default_factory=dict)
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    slo_lines: List[str] = field(default_factory=list)
    event_log: List[str] = field(default_factory=list)

    def fingerprint_lines(self) -> List[str]:
        parts = [
            f"arm={self.policies}",
            f"requests={self.requests}",
            f"failures={self.failures}",
            f"availability={self.availability!r}",
            f"p50_read={self.p50_read_s!r}",
            f"p99_read={self.p99_read_s!r}",
            f"sessions_established={self.sessions_established}",
            f"sessions_refused={self.sessions_refused}",
            f"tampered_attempted={self.tampered_attempted}",
            f"blocked_unattested={self.requests_blocked_unattested}",
            f"tenants_served={self.tenants_served}",
            f"tenants_out_of_budget={self.tenants_out_of_budget}",
        ]
        parts += [f"counter.{k}={v}" for k, v in sorted(self.counters.items())]
        parts += [f"reason.{k}={v}" for k, v in sorted(self.failure_reasons.items())]
        parts += self.slo_lines
        parts += self.event_log
        return parts

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (schema: one arm of serve-lab-report/v1)."""
        return {
            "policies": self.policies,
            "requests": self.requests,
            "failures": self.failures,
            "availability": self.availability,
            "p50_read_s": self.p50_read_s,
            "p99_read_s": self.p99_read_s,
            "sessions_established": self.sessions_established,
            "sessions_refused": self.sessions_refused,
            "tampered_attempted": self.tampered_attempted,
            "requests_blocked_unattested": self.requests_blocked_unattested,
            "tenants_served": self.tenants_served,
            "tenants_out_of_budget": self.tenants_out_of_budget,
            "counters": dict(sorted(self.counters.items())),
            "failure_reasons": dict(sorted(self.failure_reasons.items())),
            "slo_lines": list(self.slo_lines),
        }


def _make_runtime(config: ServeLabConfig) -> IceClaveRuntime:
    geometry = small_geometry()
    ftl = Ftl(geometry, chip=FlashChip(geometry))
    for lpa in range(config.working_set):
        ftl.write(lpa)
    runtime = IceClaveRuntime(
        ftl,
        config=IceClaveConfig(
            dram_bytes=512 * MIB,
            protected_region_bytes=8 * MIB,
            secure_region_bytes=8 * MIB,
            tee_preallocation_bytes=4 * MIB,
        ),
    )
    return runtime


class _ServeArm:
    """One deterministic campaign execution against the fault plan."""

    def __init__(
        self,
        seed: int,
        config: ServeLabConfig,
        tenants: List[TenantProfile],
        arrivals: List[Arrival],
        plan: Optional[FaultPlan],
        policies_on: bool,
    ) -> None:
        self.seed = seed
        self.config = config
        self.tenants = {t.tenant_id: t for t in tenants}
        self.arrivals = arrivals
        self.plan = plan
        self.policies_on = policies_on
        self.clock = TickClock()
        self.board = SloBoard(
            SloObjectives(availability=0.99, p99_read_s=2e-3), window_s=1e-3
        )
        self.counters: Dict[str, int] = {}
        self.failure_reasons: Dict[str, int] = {}
        self.event_log: List[str] = []
        self.stall_until = -1.0
        self.integrity_until = -1.0
        self.channel_states = [
            _ChannelState(
                index=i, rng=XorShift64(((seed + 1) << 8) ^ (0x5EA5 + i))
            )
            for i in range(config.channels)
        ]

        runtime = _make_runtime(config)
        ladder = (
            DegradationLadder(
                DegradeConfig(
                    integrity_violations_readonly=1,
                    integrity_violations_failsafe=6,
                    recovery_window_s=2e-3,
                )
            )
            if policies_on
            else None
        )
        self.ladder = ladder
        library = IceClaveLibrary(runtime, degradation=ladder)
        device = AttestationDevice(DEVICE_SECRET)
        self.genuine = ServerSessionManager(device, DEVICE_SECRET, GENUINE_BINARY)
        self.trojaned = ServerSessionManager(device, DEVICE_SECRET, TROJANED_BINARY)
        self.verifier = AttestationVerifier(
            DEVICE_SECRET, device.device_id,
            nonce_window=max(4096, config.tenants * 2),
        )
        self.client = AttestClient(self.verifier, DEVICE_SECRET, GENUINE_BINARY)
        self.service = OffloadService(
            sessions=self.genuine,
            library=library,
            clock=self.clock,
            channels=config.channels,
            admission=(
                AdmissionController(
                    AdmissionConfig(rate_per_s=150_000.0, burst=128.0, max_queued=96)
                )
                if policies_on
                else None
            ),
            breakers=BreakerBoard(BreakerConfig()) if policies_on else None,
            ladder=ladder,
            data_path=self._data_path,
        )
        # tenant_id -> established session, or None after a refusal
        self.sessions: Dict[int, Optional[ClientSession]] = {}
        self.sessions_refused = 0
        self.tampered_attempted = 0
        self.blocked_unattested = 0
        # fault schedule translated to sim-time, consumed as the clock passes
        self._fault_agenda = self._translate_plan()
        self._fault_cursor = 0

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _log(self, message: str) -> None:
        self.event_log.append(f"t={self.clock.now * 1e3:.3f}ms {message}")

    # -- fault translation -----------------------------------------------------

    def _translate_plan(self) -> List[Tuple[float, FaultKind, int]]:
        if self.plan is None:
            return []
        agenda = []
        for event in self.plan.events:
            index = min(event.op_index, len(self.arrivals) - 1)
            agenda.append((self.arrivals[index].at_s, event.kind, event.param))
        agenda.sort(key=lambda item: (item[0], item[1].value, item[2]))
        return agenda

    def _apply_due_faults(self) -> None:
        now = self.clock.now
        cfg = self.config
        while (
            self._fault_cursor < len(self._fault_agenda)
            and self._fault_agenda[self._fault_cursor][0] <= now
        ):
            when, kind, param = self._fault_agenda[self._fault_cursor]
            self._fault_cursor += 1
            channel = self.channel_states[param % cfg.channels]
            if kind is FaultKind.READ_BURST:
                channel.slow_until = when + cfg.storm_window_s
                channel.slow_factor = cfg.storm_factor
                channel.error_credits += cfg.storm_errors
                self._log(f"fault: retry storm on ch{channel.index}")
            elif kind in (FaultKind.UNCORRECTABLE_PAGE, FaultKind.HARD_UNCORRECTABLE):
                credits = 2 if kind is FaultKind.UNCORRECTABLE_PAGE else 4
                channel.error_credits += credits
                self._log(f"fault: uncorrectable pages on ch{channel.index}")
            elif kind is FaultKind.DIE_FAILURE:
                channel.dead_until = when + cfg.die_down_s
                self._log(f"fault: die on ch{channel.index} dark for "
                          f"{cfg.die_down_s * 1e3:.1f}ms")
            elif kind is FaultKind.DRAM_CORRUPTION:
                self._count("integrity_violations")
                self.integrity_until = max(
                    self.integrity_until, when + cfg.integrity_window_s
                )
                self._log("fault: protected-DRAM corruption")
                if self.ladder is not None:
                    before = self.ladder.mode
                    self.ladder.note_integrity_violation(when)
                    if self.ladder.mode is not before:
                        self._log(f"mode -> {self.ladder.mode.value}")
            else:  # POWER_LOSS / POWER_LOSS_MID_GC
                self.stall_until = max(self.stall_until, when + cfg.stall_s)
                self._log("fault: power-loss stall (all channels)")

    # -- the device-side data path --------------------------------------------

    def _data_path(self, op: str, lpa: int, channel_index: int, now: float) -> float:
        cfg = self.config
        channel = self.channel_states[channel_index]
        if now < channel.dead_until:
            # hung die: with a timeout the command aborts quickly; without
            # one the client just waits out the hang
            held = cfg.command_timeout_s if self.policies_on else cfg.stuck_latency_s
            raise DataPathFault(NvmeStatus.COMMAND_ABORTED, held)
        base = cfg.base_write_s if op == "write" else cfg.base_read_s
        latency = base + cfg.jitter_s * channel.rng.next_float()
        if now < channel.slow_until:
            latency *= channel.slow_factor
        if now < self.stall_until:
            latency += self.stall_until - now
        if channel.error_credits > 0:
            channel.error_credits -= 1
            status = (
                NvmeStatus.UNRECOVERED_READ_ERROR
                if op == "read"
                else NvmeStatus.WRITE_FAULT
            )
            raise DataPathFault(status, latency)
        if (
            self.ladder is None
            and op == "write"
            and now < self.integrity_until
        ):
            # policies off: nothing refuses writes while the integrity
            # machinery is compromised, so they fail at the media
            raise DataPathFault(NvmeStatus.WRITE_FAULT, latency)
        return latency

    # -- session establishment -------------------------------------------------

    def _session_for(self, tenant_id: int) -> Optional[ClientSession]:
        if tenant_id in self.sessions:
            return self.sessions[tenant_id]
        tenant = self.tenants[tenant_id]
        responder = self.trojaned if tenant.tampered else self.genuine
        if tenant.tampered:
            self.tampered_attempted += 1
        entropy = b"serve-tenant-%d" % tenant_id
        session = try_handshake(self.client, responder, tenant_id, entropy)
        if session is None:
            self.sessions_refused += 1
            self._count("sessions_refused")
            self._log(f"attestation: tenant {tenant_id} refused "
                      "(measurement mismatch)")
        else:
            self._count("sessions_established")
        self.sessions[tenant_id] = session
        return session

    # -- the campaign ----------------------------------------------------------

    async def _run_async(self) -> None:
        cfg = self.config
        await self.service.start()
        agenda: List[_AgendaItem] = []
        seq = 0
        for index, arrival in enumerate(self.arrivals):
            op = (
                "offload"
                if index % cfg.offload_every == cfg.offload_every - 1
                else arrival.op
            )
            heapq.heappush(
                agenda,
                _AgendaItem(
                    at_s=arrival.at_s, seq=seq, arrival=arrival, op=op,
                    attempts=0, first_start=arrival.at_s,
                ),
            )
            seq += 1
        while agenda:
            item = heapq.heappop(agenda)
            self.clock.advance_to(item.at_s)
            self._apply_due_faults()
            session = self._session_for(item.arrival.tenant_id)
            if session is None:
                self.blocked_unattested += 1
                continue
            request = Request(op=item.op, lpas=(item.arrival.lpa,))
            served = await self.service.submit(session.seal_request(request))
            reply = self._open_reply(session, served.response)
            finish = self.clock.now + served.latency_s
            if reply.ok:
                self.board.record(
                    item.arrival.tenant_id, finish, item.op,
                    finish - item.first_start, ok=True,
                )
                continue
            retry_at = finish + max(reply.retry_after_s, 50e-6)
            can_retry = (
                self.policies_on
                and reply.status in _CLIENT_RETRYABLE
                and item.attempts + 1 < cfg.max_attempts
                and retry_at < item.first_start + cfg.request_deadline_s
            )
            if can_retry:
                self._count("client_retries")
                heapq.heappush(
                    agenda,
                    _AgendaItem(
                        at_s=retry_at, seq=seq, arrival=item.arrival,
                        op=item.op, attempts=item.attempts + 1,
                        first_start=item.first_start,
                    ),
                )
                seq += 1
                continue
            reason = reply.status.value
            self.failure_reasons[reason] = self.failure_reasons.get(reason, 0) + 1
            self.board.record(
                item.arrival.tenant_id, finish, item.op,
                finish - item.first_start, ok=False,
            )
        await self.service.stop()

    def _open_reply(
        self, session: ClientSession, response: Union[SealedEnvelope, Reply]
    ) -> Reply:
        if isinstance(response, SealedEnvelope):
            return session.open_reply(response)
        return response

    def run(self) -> ServeArmReport:
        # a fresh loop per arm keeps the two arms fully isolated
        import asyncio

        asyncio.run(self._run_async())
        if self.ladder is not None:
            self.event_log.extend(self.ladder.transition_log())
        if self.service.breakers is not None:
            self.event_log.extend(self.service.breakers.transition_log())
        for name, value in sorted(self.service.counters.items()):
            self._count(f"service.{name}", value)
        # fleet-wide percentiles over every tenant's reads, exact and sorted
        latencies: List[float] = []
        for tenant_id in self.board.tenant_ids():
            latencies.extend(self.board.tracker(tenant_id).sorted_latencies("read"))
        latencies.sort()

        def pct(p: float) -> float:
            if not latencies:
                return 0.0
            idx = min(len(latencies) - 1, int(round(p / 100.0 * (len(latencies) - 1))))
            return latencies[idx]

        return ServeArmReport(
            policies="on" if self.policies_on else "off",
            requests=self.board.total,
            failures=self.board.failures,
            availability=self.board.availability(),
            p50_read_s=pct(50.0),
            p99_read_s=pct(99.0),
            sessions_established=self.genuine.established,
            sessions_refused=self.sessions_refused,
            tampered_attempted=self.tampered_attempted,
            requests_blocked_unattested=self.blocked_unattested,
            tenants_served=len(self.board.tenant_ids()),
            tenants_out_of_budget=self.board.tenants_out_of_budget(),
            counters=dict(self.counters),
            failure_reasons=dict(self.failure_reasons),
            slo_lines=self.board.summary_lines(top_k=5),
            event_log=list(self.event_log),
        )


@dataclass
class ServeLabReport:
    """Both arms of one serve experiment plus the comparison."""

    seed: int
    tenants: int
    requests: int
    channels: int
    process: str
    chaos: bool
    tampered: int
    plan_summary: Dict[str, int]
    baseline: ServeArmReport  # policies off
    attested: ServeArmReport  # policies on

    def availability_gain(self) -> float:
        return self.attested.availability - self.baseline.availability

    @property
    def policy_win(self) -> bool:
        return self.attested.availability > self.baseline.availability

    def attestation_gate_held(self) -> bool:
        """Every tampered tenant that handshook was refused, in both arms.

        Low-weight tenants may never arrive within the campaign, so the
        gate is judged against attempted handshakes, and held only if at
        least one tampered handshake was actually exercised.
        """
        return all(
            arm.sessions_refused == arm.tampered_attempted
            and arm.tampered_attempted > 0
            for arm in (self.baseline, self.attested)
        )

    def fingerprint(self) -> str:
        parts = [
            f"seed={self.seed}",
            f"tenants={self.tenants}",
            f"requests={self.requests}",
            f"channels={self.channels}",
            f"process={self.process}",
            f"chaos={self.chaos}",
            f"tampered={self.tampered}",
        ]
        parts += [f"plan.{k}={v}" for k, v in sorted(self.plan_summary.items())]
        parts += self.baseline.fingerprint_lines()
        parts += self.attested.fingerprint_lines()
        return "\n".join(parts)

    def format(self) -> str:
        lines = [
            f"serve experiment: seed {self.seed}, {self.tenants} tenants,"
            f" {self.requests} requests, {self.process} arrivals,"
            f" chaos {'on' if self.chaos else 'off'}",
            f"  attestation gate: {self.tampered} tampered tenant(s) planted,"
            f" {self.attested.tampered_attempted} handshook,"
            f" {self.attested.sessions_refused} refused,"
            f" {self.attested.requests_blocked_unattested} requests blocked",
        ]
        for arm in (self.baseline, self.attested):
            label = "policies OFF" if arm.policies == "off" else "policies ON "
            lines.append(
                f"  {label}    : availability={arm.availability * 100:8.4f}%"
                f"  p50={arm.p50_read_s * 1e6:8.1f}us"
                f"  p99={arm.p99_read_s * 1e6:8.1f}us"
                f"  failures={arm.failures}"
                f"  out_of_budget={arm.tenants_out_of_budget}"
            )
        lines.append(
            f"  delta           : availability {self.availability_gain() * 100:+.4f} pp"
        )
        lines.append("  per-tenant SLO (policies on):")
        lines += [f"    {line}" for line in self.attested.slo_lines]
        return "\n".join(lines)

    def csv_rows(self) -> List[List[str]]:
        header = [
            "seed", "tenants", "requests", "channels", "process", "chaos",
            "policies", "availability", "p50_read_s", "p99_read_s", "failures",
            "sessions_refused", "blocked_unattested", "tenants_out_of_budget",
        ]
        rows = [header]
        for arm in (self.baseline, self.attested):
            rows.append([
                str(self.seed), str(self.tenants), str(self.requests),
                str(self.channels), self.process, str(self.chaos).lower(),
                arm.policies, repr(arm.availability), repr(arm.p50_read_s),
                repr(arm.p99_read_s), str(arm.failures),
                str(arm.sessions_refused),
                str(arm.requests_blocked_unattested),
                str(arm.tenants_out_of_budget),
            ])
        return rows

    def to_json(self) -> Dict[str, object]:
        """Stable export (schema serve-lab-report/v1; CI asserts the keys)."""
        return {
            "schema": "serve-lab-report/v1",
            "seed": self.seed,
            "tenants": self.tenants,
            "requests": self.requests,
            "channels": self.channels,
            "process": self.process,
            "chaos": self.chaos,
            "tampered": self.tampered,
            "attestation_gate_held": self.attestation_gate_held(),
            "policy_win": self.policy_win,
            "plan": dict(sorted(self.plan_summary.items())),
            "arms": [self.baseline.as_dict(), self.attested.as_dict()],
        }


def run_serve_lab(
    seed: int = 7,
    tenants: int = 1000,
    requests: int = 4000,
    config: Optional[ServeLabConfig] = None,
    process: str = "poisson",
    chaos: bool = True,
    plan_config: Optional[FaultPlanConfig] = None,
) -> ServeLabReport:
    """Run both arms (policies off, then on) of one serve experiment."""
    cfg = config or ServeLabConfig(
        tenants=tenants,
        requests=requests,
        arrival=ArrivalConfig(process=process),
        chaos=chaos,
    )
    profiles = make_tenants(cfg.tenants, seed, cfg.tampered_fraction)
    arrivals = generate_arrivals(
        profiles, cfg.arrival, cfg.requests, seed, working_set=cfg.working_set
    )
    plan = (
        FaultPlan.generate(
            seed, cfg.requests, plan_config or serve_plan_config(cfg.requests)
        )
        if cfg.chaos
        else None
    )
    tampered = sum(1 for t in profiles if t.tampered)
    baseline = _ServeArm(seed, cfg, profiles, arrivals, plan, policies_on=False).run()
    attested = _ServeArm(seed, cfg, profiles, arrivals, plan, policies_on=True).run()
    return ServeLabReport(
        seed=seed,
        tenants=cfg.tenants,
        requests=cfg.requests,
        channels=cfg.channels,
        process=cfg.arrival.process,
        chaos=cfg.chaos,
        tampered=tampered,
        plan_summary=(
            {k.value: v for k, v in plan.by_kind().items()} if plan else {}
        ),
        baseline=baseline,
        attested=attested,
    )


__all__ = [
    "GENUINE_BINARY",
    "ServeArmReport",
    "ServeLabConfig",
    "ServeLabReport",
    "TROJANED_BINARY",
    "run_serve_lab",
    "serve_plan_config",
]
