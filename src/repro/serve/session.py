"""Session establishment and the per-session secure channel.

This is the key TCB of the serving layer (it is listed in the analysis
suite's ``KEY_TCB_MODULES``): session keys are derived, held, and used
here, and nowhere else in ``repro.serve``.

The protocol is the canonical attested-channel bootstrap:

1. the client draws a fresh nonce from its :class:`AttestationVerifier`
   (replay-hardened: re-offering the same entropy is refused) and sends an
   :class:`~repro.serve.wire.AttestChallenge`;
2. the server quotes its code measurement over the nonce with its
   vendor-provisioned :class:`AttestationDevice` and answers with an
   :class:`~repro.serve.wire.AttestGrant` naming a session id;
3. the client verifies the quote (device identity, signature, *expected*
   measurement, nonce freshness). Both sides then derive the session key
   with :func:`~repro.core.key_management.derive_kek` — but the client
   derives it from the measurement it *expected*, so even a client that
   skipped verification would end up keyless against a trojaned server:
   the key simply does not match.

Requests and replies travel as :class:`~repro.serve.wire.SealedEnvelope`
(encrypt-then-MAC, keystream XOR): the MAC binds session id, direction and
a per-direction monotonic sequence number, and the server accepts client
sequence numbers strictly in order — a recorded envelope replays as
``AUTH_FAILED``, never as a second execution.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.attestation import (
    AttestationDevice,
    AttestationError,
    AttestationVerifier,
    measure_code,
)
from repro.core.key_management import derive_kek
from repro.core.tee import Tee
from repro.crypto.mac import Mac
from repro.serve.wire import (
    AttestChallenge,
    AttestGrant,
    Reply,
    Request,
    SealedEnvelope,
    WireStatus,
)

CHANNEL_C2S = b"c2s"
CHANNEL_S2C = b"s2c"


class SessionError(Exception):
    """A wire-level session failure, carrying its typed status."""

    def __init__(self, status: WireStatus, what: str) -> None:
        super().__init__(what)
        self.status = status


def _keystream(session_key: bytes, session_id: int, channel: bytes,
               seq: int, nbytes: int) -> bytes:
    out = bytearray()
    counter = 0
    prefix = (
        session_key
        + session_id.to_bytes(8, "big")
        + channel
        + seq.to_bytes(8, "big")
    )
    while len(out) < nbytes:
        out.extend(
            hashlib.blake2b(
                prefix + counter.to_bytes(4, "big"), digest_size=32
            ).digest()
        )
        counter += 1
    return bytes(out[:nbytes])


class SecureChannel:
    """Seal/open primitive bound to one session key.

    Encrypt-then-MAC: the tag covers (session id, direction, sequence,
    ciphertext), so tampering, replaying, or reflecting an envelope onto
    the other direction all fail authentication.
    """

    def __init__(self, session_id: int, session_key: bytes) -> None:
        if len(session_key) < 16:
            raise ValueError("session key must be at least 128 bits")
        self.session_id = session_id
        self._mac = Mac(session_key)
        self._seal_key = session_key

    def seal(self, channel: bytes, seq: int, plaintext: bytes) -> SealedEnvelope:
        pad = _keystream(self._seal_key, self.session_id, channel, seq,
                         len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, pad))
        tag = self._mac.digest(
            self.session_id.to_bytes(8, "big"),
            channel,
            seq.to_bytes(8, "big"),
            ciphertext,
        )
        return SealedEnvelope(
            session_id=self.session_id,
            channel=channel,
            seq=seq,
            ciphertext=ciphertext,
            tag=tag,
        )

    def open(self, envelope: SealedEnvelope, channel: bytes, seq: int) -> bytes:
        if envelope.channel != channel:
            raise SessionError(WireStatus.AUTH_FAILED, "wrong channel direction")
        if envelope.seq != seq:
            raise SessionError(
                WireStatus.AUTH_FAILED,
                f"sequence {envelope.seq} != expected {seq} (replay or loss)",
            )
        ok = self._mac.verify(
            envelope.tag,
            envelope.session_id.to_bytes(8, "big"),
            envelope.channel,
            envelope.seq.to_bytes(8, "big"),
            envelope.ciphertext,
        )
        if not ok:
            raise SessionError(WireStatus.AUTH_FAILED, "envelope MAC invalid")
        pad = _keystream(self._seal_key, envelope.session_id, channel, seq,
                         len(envelope.ciphertext))
        return bytes(a ^ b for a, b in zip(envelope.ciphertext, pad))


@dataclass
class ServerSession:
    """Server-side per-session state: the channel plus sequence cursors."""

    session_id: int
    client_id: int
    channel: SecureChannel
    next_c2s: int = 0  # next client sequence number we will accept
    next_s2c: int = 0  # next server sequence number we will emit


class ServerSessionManager:
    """The service's session table and attestation responder.

    Holds the device-side quoting facility and the binary the service
    actually runs; ``attest`` answers challenges with a quote over that
    binary's measurement, which is exactly what a tampered deployment
    cannot fake.
    """

    def __init__(
        self,
        device: AttestationDevice,
        device_secret: bytes,
        binary: bytes,
    ) -> None:
        self._device = device
        self._secret = device_secret
        # the service's code identity, quoted during every handshake
        self._identity = Tee(eid=1, tid=0, code=binary, lpas=[0])
        self._sessions: Dict[int, ServerSession] = {}
        self._next_session_id = 1

    @property
    def established(self) -> int:
        return len(self._sessions)

    def attest(self, challenge: AttestChallenge) -> AttestGrant:
        """Answer a challenge: quote the running binary, open a session."""
        quote = self._device.quote(self._identity, challenge.nonce)
        session_key = derive_kek(
            self._secret, self._identity.measurement, challenge.nonce
        )
        session_id = self._next_session_id
        self._next_session_id += 1
        self._sessions[session_id] = ServerSession(
            session_id=session_id,
            client_id=challenge.client_id,
            channel=SecureChannel(session_id, session_key),
        )
        return AttestGrant(session_id=session_id, quote=quote)

    def session(self, session_id: int) -> ServerSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(
                WireStatus.UNKNOWN_SESSION, f"no session {session_id}"
            ) from None

    def open_request(self, envelope: SealedEnvelope) -> Request:
        """Authenticate, decrypt and decode one client envelope.

        The accepted sequence cursor only advances on success, so a
        replayed or tampered envelope cannot desynchronize the session.
        """
        session = self.session(envelope.session_id)
        plaintext = session.channel.open(envelope, CHANNEL_C2S, session.next_c2s)
        try:
            request = Request.decode(plaintext)
        except ValueError as err:
            raise SessionError(WireStatus.BAD_REQUEST, str(err)) from err
        session.next_c2s += 1
        return request

    def seal_reply(self, session_id: int, reply: Reply) -> SealedEnvelope:
        session = self.session(session_id)
        envelope = session.channel.seal(
            CHANNEL_S2C, session.next_s2c, reply.encode()
        )
        session.next_s2c += 1
        return envelope

    def close(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)


class ClientSession:
    """Client-side view of one established session."""

    def __init__(self, session_id: int, channel: SecureChannel) -> None:
        self.session_id = session_id
        self._channel = channel
        self._next_c2s = 0
        self._next_s2c = 0

    def seal_request(self, request: Request) -> SealedEnvelope:
        envelope = self._channel.seal(
            CHANNEL_C2S, self._next_c2s, request.encode()
        )
        self._next_c2s += 1
        return envelope

    def open_reply(self, envelope: SealedEnvelope) -> Reply:
        plaintext = self._channel.open(envelope, CHANNEL_S2C, self._next_s2c)
        self._next_s2c += 1
        return Reply.decode(plaintext)


class AttestClient:
    """The user-side endpoint: challenge, verify, derive, then submit.

    ``expected_binary`` is the program the client believes the service
    runs; the quote's measurement must match it, and the session key is
    derived from that expectation (not from whatever the server claims).
    """

    def __init__(
        self,
        verifier: AttestationVerifier,
        device_secret: bytes,
        expected_binary: bytes,
    ) -> None:
        self._verifier = verifier
        self._secret = device_secret
        self._expected_binary = expected_binary
        self._expected_measurement = measure_code(expected_binary)

    def challenge(self, client_id: int, entropy: bytes) -> AttestChallenge:
        """Draw a fresh nonce; reused entropy raises AttestationError."""
        return AttestChallenge(
            client_id=client_id, nonce=self._verifier.fresh_nonce(entropy)
        )

    def establish(
        self, challenge: AttestChallenge, grant: AttestGrant
    ) -> ClientSession:
        """Verify the grant's quote and derive the session.

        Raises :class:`AttestationError` when the quote names a different
        measurement (a trojaned service), a wrong device, or a consumed
        challenge — the session is never created in that case.
        """
        self._verifier.verify(
            grant.quote,
            expected_code=self._expected_binary,
            nonce=challenge.nonce,
        )
        session_key = derive_kek(
            self._secret, self._expected_measurement, challenge.nonce
        )
        return ClientSession(
            grant.session_id, SecureChannel(grant.session_id, session_key)
        )

    def handshake(
        self,
        responder: ServerSessionManager,
        client_id: int,
        entropy: bytes,
    ) -> ClientSession:
        """Full challenge → grant → verify round against ``responder``."""
        challenge = self.challenge(client_id, entropy)
        grant = responder.attest(challenge)
        return self.establish(challenge, grant)


def try_handshake(
    client: AttestClient,
    responder: ServerSessionManager,
    client_id: int,
    entropy: bytes,
) -> Optional[ClientSession]:
    """Handshake that returns ``None`` on refusal instead of raising."""
    try:
        return client.handshake(responder, client_id, entropy)
    except AttestationError:
        return None


__all__ = [
    "AttestClient",
    "CHANNEL_C2S",
    "CHANNEL_S2C",
    "ClientSession",
    "SecureChannel",
    "ServerSession",
    "ServerSessionManager",
    "SessionError",
    "try_handshake",
]
