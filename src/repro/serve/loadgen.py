"""Open-loop load generation for the serve lab.

An *open-loop* generator decides arrival times up front, independent of
how the service responds — which is the honest way to measure overload
behaviour (a closed loop self-throttles and hides the failure mode, the
classic coordinated-omission trap).

Two arrival processes, both pure functions of the seed:

- ``poisson`` — exponential interarrivals at ``rate_per_s``;
- ``bursty``  — the same Poisson base, but alternating on/off phases: a
  burst phase at ``burst_factor`` × the base rate, then a quiet phase at a
  compensating lower rate, so the long-run average rate stays equal.

Tenants get Zipf-ish weights (rank-skewed popularity), a per-tenant write
fraction, and a deterministic tampered subset: those tenants' handshakes
are answered by a trojaned deployment, which the lab's attestation gate
must refuse.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.prng import XorShift64

PROCESSES = ("poisson", "bursty")


@dataclass(frozen=True)
class ArrivalConfig:
    """Shape of the arrival process."""

    process: str = "poisson"
    rate_per_s: float = 50_000.0
    burst_factor: float = 4.0  # burst-phase rate multiplier (bursty only)
    burst_phase_s: float = 2e-3  # on/off phase length (bursty only)

    def __post_init__(self) -> None:
        if self.process not in PROCESSES:
            raise ValueError(
                f"unknown process {self.process!r} (expected one of {PROCESSES})"
            )
        if self.rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst factor must be >= 1")
        if self.burst_phase_s <= 0:
            raise ValueError("burst phase must be positive")


@dataclass(frozen=True)
class TenantProfile:
    """One simulated tenant."""

    tenant_id: int
    weight: float  # relative arrival share (Zipf-ish)
    write_fraction: float
    tampered: bool = False  # served by a trojaned deployment


@dataclass(frozen=True)
class Arrival:
    """One scheduled request arrival."""

    at_s: float
    tenant_id: int
    op: str  # "read" | "write"
    lpa: int


def make_tenants(
    count: int,
    seed: int,
    tampered_fraction: float = 0.01,
    zipf_alpha: float = 0.8,
) -> List[TenantProfile]:
    """Build ``count`` tenants with an exact, seed-deterministic tampered set.

    The tampered count is ``round(count * tampered_fraction)`` exactly (at
    least 1 whenever the fraction is non-zero), sampled without replacement
    from the id space — so the lab can assert refusals == tampered count.
    """
    if count < 1:
        raise ValueError("need at least one tenant")
    if not 0.0 <= tampered_fraction < 1.0:
        raise ValueError("tampered fraction must lie in [0, 1)")
    rng = XorShift64((seed << 3) ^ 0x7E4A47)
    tampered_count = int(round(count * tampered_fraction))
    if tampered_fraction > 0.0:
        tampered_count = max(1, tampered_count)
    tampered_ids = set()
    while len(tampered_ids) < tampered_count:
        tampered_ids.add(rng.next_below(count))
    return [
        TenantProfile(
            tenant_id=i,
            weight=1.0 / float(i + 1) ** zipf_alpha,
            write_fraction=0.15 + 0.25 * rng.next_float(),
            tampered=i in tampered_ids,
        )
        for i in range(count)
    ]


def _interarrival(rng: XorShift64, rate_per_s: float) -> float:
    # inverse-CDF exponential; 1 - u keeps the argument away from log(0)
    return -math.log(1.0 - rng.next_float()) / rate_per_s


def _phase_rate(config: ArrivalConfig, now: float) -> float:
    if config.process != "bursty":
        return config.rate_per_s
    phase = int(now / config.burst_phase_s)
    if phase % 2 == 0:
        return config.rate_per_s * config.burst_factor
    # compensate so the long-run average matches the base rate
    quiet = 2.0 - config.burst_factor
    return config.rate_per_s * max(quiet, 0.25)


def generate_arrivals(
    tenants: List[TenantProfile],
    config: ArrivalConfig,
    total_requests: int,
    seed: int,
    working_set: int = 256,
) -> List[Arrival]:
    """The full open-loop schedule: a pure function of its arguments."""
    if total_requests < 1:
        raise ValueError("need at least one request")
    if working_set < 1:
        raise ValueError("working set must be positive")
    rng = XorShift64((seed << 5) ^ 0xA771)
    cumulative: List[float] = []
    acc = 0.0
    for tenant in tenants:
        acc += tenant.weight
        cumulative.append(acc)
    arrivals: List[Arrival] = []
    now = 0.0
    for _ in range(total_requests):
        now += _interarrival(rng, _phase_rate(config, now))
        pick = rng.next_float() * acc
        index = min(bisect.bisect_left(cumulative, pick), len(tenants) - 1)
        tenant = tenants[index]
        op = "write" if rng.next_float() < tenant.write_fraction else "read"
        arrivals.append(
            Arrival(
                at_s=now,
                tenant_id=tenant.tenant_id,
                op=op,
                lpa=rng.next_below(working_set),
            )
        )
    return arrivals


def arrival_stats(arrivals: List[Arrival]) -> Tuple[float, float, int]:
    """(span_s, mean_rate_per_s, distinct_tenants) — for report headers."""
    if not arrivals:
        return (0.0, 0.0, 0)
    span = arrivals[-1].at_s
    rate = len(arrivals) / span if span > 0 else 0.0
    return (span, rate, len({a.tenant_id for a in arrivals}))


__all__ = [
    "Arrival",
    "ArrivalConfig",
    "PROCESSES",
    "TenantProfile",
    "arrival_stats",
    "generate_arrivals",
    "make_tenants",
]
