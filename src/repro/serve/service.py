"""The asyncio offload service: sessions in front, policies at the gate.

:class:`OffloadService` is the request/response front-end the serving PRs
build on. One asyncio pump task drains an inbox queue in FIFO order and
answers each sealed envelope through a future — genuinely asynchronous at
the API (``await submit(...)``), yet fully deterministic: time comes from
an injectable :class:`TickClock` (never the wall clock), and the single
pump imposes a total order on request handling.

Request path, in gate order:

1. **authenticate** — the envelope must open on an established session
   (wrong session / bad MAC / replayed sequence answer in plaintext with
   ``UNKNOWN_SESSION`` / ``AUTH_FAILED``; there is no session key to seal
   a reply under);
2. **admit** — the token-bucket admission controller may shed the request
   (``THROTTLED`` + retry-after) before it costs anything;
3. **mode-gate** — the degradation ladder refuses writes in
   ``DEGRADED_READONLY`` and reads in ``FAILSAFE``, each as a typed,
   retryable rejection carrying the current mode;
4. **dispatch** — reads/writes go to the data path behind per-channel
   circuit breakers (an open breaker reroutes to the replica channel);
   ``offload`` goes through :class:`~repro.host.library.IceClaveLibrary`,
   with ``ServiceDegradedError`` and ``TeeCreationError`` mapped onto the
   wire taxonomy.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, Sequence, Tuple, Union

from repro.core.exceptions import TeeCreationError
from repro.host.library import IceClaveLibrary, ServiceDegradedError
from repro.host.nvme import NvmeStatus
from repro.resilience.admission import AdmissionController
from repro.resilience.breaker import BreakerBoard
from repro.resilience.degrade import DegradationLadder
from repro.serve.session import ServerSessionManager, SessionError
from repro.serve.wire import (
    Reply,
    Request,
    SealedEnvelope,
    WireStatus,
    retry_after_for,
    status_for_mode,
    status_for_nvme,
)


class TickClock:
    """Deterministic sim-time clock for the asyncio front-end.

    The event loop never tells the service what time it is; the driver
    (test, lab, campaign) advances this clock explicitly, which is what
    keeps two same-seed campaigns byte-identical.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, when: float) -> None:
        if when < self._now:
            raise ValueError(
                f"clock cannot run backwards ({when!r} < {self._now!r})"
            )
        self._now = when

    def advance(self, delta: float) -> None:
        if delta < 0:
            raise ValueError("clock delta must be non-negative")
        self._now += delta


class DataPathFault(Exception):
    """The device-side data path failed one command.

    Carries the NVMe completion status plus the sim-time the command held
    the channel before failing (a timeout is tail latency, not a no-op).
    """

    def __init__(self, status: NvmeStatus, latency_s: float) -> None:
        super().__init__(status.name)
        self.status = status
        self.latency_s = latency_s


# data path: (op, lpa, channel_index, now) -> service latency in seconds
DataPath = Callable[[str, int, int, float], float]


class ChannelRouter(Protocol):
    """Pluggable channel placement for :meth:`OffloadService._pick_channel`.

    The service stays agnostic of who does the placing — the fleet layer's
    consistent-hash adapter satisfies this protocol without the serving
    layer ever importing it (the layer DAG points fleet → serve, not back).
    Candidates are tried in order behind the per-channel breakers.
    """

    def candidates(self, op: str, lpa: int) -> Sequence[int]: ...


def _default_data_path(op: str, lpa: int, channel: int, now: float) -> float:
    return 120e-6 if op == "write" else 80e-6


@dataclass
class Served:
    """One handled request: the wire response plus its service latency.

    ``response`` is a sealed envelope for authenticated traffic and a
    plaintext :class:`Reply` when there was no session to seal under.
    ``latency_s`` is device time only; queueing is the driver's ledger.
    """

    response: Union[SealedEnvelope, Reply]
    reply: Reply
    latency_s: float


class OffloadService:
    """Attested multi-tenant front-end over one IceClave device."""

    def __init__(
        self,
        sessions: ServerSessionManager,
        library: IceClaveLibrary,
        clock: Optional[TickClock] = None,
        channels: int = 4,
        admission: Optional[AdmissionController] = None,
        breakers: Optional[BreakerBoard] = None,
        ladder: Optional[DegradationLadder] = None,
        data_path: DataPath = _default_data_path,
        auth_penalty_s: float = 5e-6,
        router: Optional[ChannelRouter] = None,
    ) -> None:
        if channels < 1:
            raise ValueError("the service needs at least one channel")
        self.sessions = sessions
        self.library = library
        self.clock = clock or TickClock()
        self.channels = channels
        self.admission = admission
        self.breakers = breakers
        self.ladder = ladder
        self.data_path = data_path
        self.auth_penalty_s = auth_penalty_s
        self.router = router
        self.counters: Dict[str, int] = {}
        self.in_flight = 0
        self._inbox: Optional[asyncio.Queue] = None
        self._pump: Optional[asyncio.Task] = None

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _mode(self) -> str:
        return self.library.service_mode()

    def _refusal(self, status: WireStatus) -> Reply:
        return Reply(
            status=status,
            retry_after_s=retry_after_for(status),
            mode=self._mode(),
        )

    # -- channel selection (mirrors the resilience lab's replica scheme) -------

    def _primary(self, lpa: int) -> int:
        return lpa % self.channels

    def _replica(self, lpa: int) -> int:
        return (lpa + self.channels // 2) % self.channels

    def _candidates(self, op: str, lpa: int) -> Sequence[int]:
        if self.router is not None:
            return self.router.candidates(op, lpa)
        return (self._primary(lpa), self._replica(lpa))

    def _pick_channel(self, op: str, lpa: int) -> Optional[int]:
        now = self.clock.now
        for index in self._candidates(op, lpa):
            if self.breakers is None:
                return index
            if self.breakers.breaker(f"ch{index}").allow(now):
                return index
        return None

    def _feed_breaker(self, channel: int, ok: bool) -> None:
        if self.breakers is None:
            return
        now = self.clock.now
        breaker = self.breakers.breaker(f"ch{channel}")
        if ok:
            breaker.record_success(now)
        else:
            breaker.record_failure(now)
        if self.ladder is not None:
            self.ladder.note_open_breakers(now, self.breakers.open_count(now))

    # -- request handling ------------------------------------------------------

    def handle(self, envelope: SealedEnvelope) -> Served:
        """Authenticate, admit, gate, dispatch — synchronously, at clock.now."""
        now = self.clock.now
        try:
            request = self.sessions.open_request(envelope)
        except SessionError as err:
            self._count(f"rejected.{err.status.value}")
            reply = self._refusal(err.status)
            return Served(response=reply, reply=reply,
                          latency_s=self.auth_penalty_s)

        if self.admission is not None and not self.admission.admit(
            now, queued=self.in_flight
        ):
            self._count("shed_admission")
            return self._sealed(envelope.session_id, self._refusal(
                WireStatus.THROTTLED), self.auth_penalty_s)

        self.in_flight += 1
        try:
            reply, latency = self._dispatch(request, now)
        finally:
            self.in_flight -= 1
        self._count(f"reply.{reply.status.value}")
        return self._sealed(envelope.session_id, reply, latency)

    def _sealed(self, session_id: int, reply: Reply, latency: float) -> Served:
        return Served(
            response=self.sessions.seal_reply(session_id, reply),
            reply=reply,
            latency_s=latency,
        )

    def _dispatch(self, request: Request, now: float) -> Tuple[Reply, float]:
        if request.op == "offload":
            return self._dispatch_offload(request)
        # mode gates: refusals are typed and carry the retry-after hint
        if self.ladder is not None:
            if request.op == "write" and not self.ladder.allows_writes():
                self._count("writes_refused_degraded")
                return self._refusal(WireStatus.DEGRADED_READONLY), 0.0
            if request.op == "read" and not self.ladder.allows_reads():
                self._count("reads_refused_failsafe")
                return self._refusal(WireStatus.FAILSAFE), 0.0
        lpa = request.lpas[0]
        channel = self._pick_channel(request.op, lpa)
        if channel is None:
            self._count("no_channel_available")
            return self._refusal(WireStatus.THROTTLED), 0.0
        try:
            latency = self.data_path(request.op, lpa, channel, now)
        except DataPathFault as fault:
            self._feed_breaker(channel, ok=False)
            status = status_for_nvme(fault.status)
            self._count(f"data_path.{fault.status.name}")
            return (
                Reply(
                    status=status,
                    retry_after_s=retry_after_for(status),
                    mode=self._mode(),
                ),
                fault.latency_s,
            )
        self._feed_breaker(channel, ok=True)
        return Reply(status=WireStatus.OK, mode=self._mode()), latency

    def _dispatch_offload(self, request: Request) -> Tuple[Reply, float]:
        try:
            handle = self.library.offload_code(
                request.payload or b"\x90", lpas=list(request.lpas)
            )
        except ServiceDegradedError as err:
            status = status_for_mode(err.mode)
            self._count("offloads_refused_degraded")
            return (
                Reply(
                    status=status,
                    retry_after_s=retry_after_for(status),
                    mode=err.mode,
                ),
                0.0,
            )
        except TeeCreationError as err:
            self._count("offloads_refused_exhausted")
            return (
                Reply(
                    status=WireStatus.RESOURCE_EXHAUSTED,
                    retry_after_s=retry_after_for(WireStatus.RESOURCE_EXHAUSTED),
                    payload=str(err).encode("utf-8"),
                    mode=self._mode(),
                ),
                0.0,
            )
        self.library.execute(handle, lambda tee: b"ok:" + tee.measurement[:4])
        result = self.library.get_result(handle.tid)
        return Reply(status=WireStatus.OK, payload=result, mode=self._mode()), 250e-6

    # -- the asyncio surface ---------------------------------------------------

    async def start(self) -> None:
        """Start the pump task on the running loop (idempotent)."""
        if self._pump is not None:
            return
        self._inbox = asyncio.Queue()
        self._pump = asyncio.get_running_loop().create_task(self._serve())

    async def stop(self) -> None:
        # capture-and-null BEFORE awaiting: a concurrent stop() (or a
        # submit()) interleaving at the awaits must see the service already
        # closed, not half-stopped state it could double-drain
        pump, inbox = self._pump, self._inbox
        if pump is None or inbox is None:
            return
        self._pump = None
        self._inbox = None
        await inbox.put(None)
        await pump

    async def _serve(self) -> None:
        assert self._inbox is not None
        while True:
            item = await self._inbox.get()
            if item is None:
                return
            envelope, future = item
            if not future.cancelled():
                future.set_result(self.handle(envelope))

    async def submit(self, envelope: SealedEnvelope) -> Served:
        """Enqueue one envelope and await its response."""
        if self._inbox is None:
            raise RuntimeError("service not started (await service.start())")
        future = asyncio.get_running_loop().create_future()
        await self._inbox.put((envelope, future))
        return await future


__all__ = [
    "DataPath",
    "DataPathFault",
    "OffloadService",
    "Served",
    "TickClock",
]
