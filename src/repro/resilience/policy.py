"""Deterministic request-path policies: timeouts, retries, hedged reads.

Every delay these policies produce is *simulation time* and every random
choice comes from an explicitly seeded :class:`~repro.crypto.prng.XorShift64`
stream, so a chaos campaign with policies enabled remains a pure function of
(seed, plan) — the same reproducibility contract the fault injector keeps.

The three primitives mirror the standard production toolkit:

- :class:`TimeoutBudget` — per-command and per-request sim-time deadlines;
- :class:`RetryPolicy` — capped exponential backoff with seeded jitter,
  always bounded by ``max_attempts`` *and* the request deadline;
- :class:`HedgePolicy` — a speculative duplicate read issued to a replica
  channel once the first attempt exceeds a latency quantile (Dean &
  Barroso's "tail at scale" hedge, in sim-time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prng import XorShift64


@dataclass(frozen=True)
class TimeoutBudget:
    """Sim-time deadlines for one logical request.

    ``command_timeout_s`` bounds a single NVMe command (a hung die must not
    wedge a queue slot); ``request_deadline_s`` bounds the whole retry
    chain — once spent, the request fails rather than retrying forever.
    """

    command_timeout_s: float = 1e-3
    request_deadline_s: float = 10e-3

    def __post_init__(self) -> None:
        if self.command_timeout_s <= 0 or self.request_deadline_s <= 0:
            raise ValueError("timeout budgets must be positive")
        if self.request_deadline_s < self.command_timeout_s:
            raise ValueError("request deadline cannot be shorter than one command")


class RetryPolicy:
    """Capped exponential backoff with seeded jitter.

    ``delay(attempt)`` for attempt k (0-based count of *completed* failed
    attempts) is ``min(base * multiplier**k, cap)`` plus a jitter drawn from
    the policy's own PRNG stream in ``[0, jitter_fraction * delay)``.
    The PRNG is seeded explicitly, so two runs replay identical backoffs.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 100e-6,
        multiplier: float = 2.0,
        cap_s: float = 2e-3,
        jitter_fraction: float = 0.25,
        seed: int = 0xB0FF,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if base_delay_s < 0 or cap_s < base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= cap_s")
        if not 0.0 <= jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must lie in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.cap_s = cap_s
        self.jitter_fraction = jitter_fraction
        self._rng = XorShift64(seed or 1)

    def allows(self, attempts_done: int) -> bool:
        """May another attempt be issued after ``attempts_done`` failures?"""
        return attempts_done < self.max_attempts

    def delay(self, attempts_done: int) -> float:
        """Backoff before attempt number ``attempts_done + 1``."""
        if attempts_done < 1:
            return 0.0  # first retry can be immediate-ish; jitter still applies
        exponent = attempts_done - 1
        raw = min(self.base_delay_s * (self.multiplier ** exponent), self.cap_s)
        jitter = raw * self.jitter_fraction * self._rng.next_float()
        return raw + jitter


class HedgePolicy:
    """Speculative duplicate reads against the observed latency tail.

    ``hedge_delay(observed)`` returns how long to wait before issuing the
    duplicate: the ``quantile`` of the latencies observed so far, or
    ``floor_s`` until ``min_samples`` completions exist (early in a run the
    quantile is noise). Only reads hedge — a duplicated write would double
    flash wear and reorder the log.
    """

    def __init__(
        self,
        quantile: float = 0.95,
        floor_s: float = 400e-6,
        min_samples: int = 32,
        max_hedges_in_flight: int = 4,
    ) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("hedge quantile must lie in (0, 1)")
        if floor_s <= 0:
            raise ValueError("hedge floor must be positive")
        self.quantile = quantile
        self.floor_s = floor_s
        self.min_samples = min_samples
        self.max_hedges_in_flight = max_hedges_in_flight

    def hedge_delay(self, observed_sorted: list[float]) -> float:
        """Delay before hedging, given *sorted* observed read latencies."""
        if len(observed_sorted) < self.min_samples:
            return self.floor_s
        idx = min(
            len(observed_sorted) - 1,
            int(self.quantile * (len(observed_sorted) - 1)),
        )
        return max(self.floor_s, observed_sorted[idx])


__all__ = ["HedgePolicy", "RetryPolicy", "TimeoutBudget"]
