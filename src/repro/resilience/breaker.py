"""Circuit breakers keyed per channel/die, driven by the sim clock.

A breaker protects the rest of the stack from a component that is failing
*persistently* — a quarantined die, a channel in an ECC read-retry storm —
by failing fast instead of queueing doomed commands behind it.

State machine (the classic three states, all transitions in sim-time):

    CLOSED --[``failure_threshold`` consecutive failures]--> OPEN
    OPEN   --[``reset_timeout_s`` elapsed]-->                HALF_OPEN
    HALF_OPEN --[probe succeeds]-->                          CLOSED
    HALF_OPEN --[probe fails]-->                             OPEN (timer rearms)

While OPEN, ``allow()`` refuses traffic so callers route to a replica; in
HALF_OPEN exactly one probe command per ``probe_interval_s`` is let through.
Every transition is appended to ``transitions`` with its sim timestamp, so
two runs with the same seed produce byte-identical breaker histories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    failure_threshold: int = 5  # consecutive failures that trip the breaker
    reset_timeout_s: float = 2e-3  # OPEN -> HALF_OPEN after this long
    probe_interval_s: float = 1e-3  # min spacing between HALF_OPEN probes
    success_threshold: int = 1  # probe successes needed to close again

    def __post_init__(self) -> None:
        if self.failure_threshold < 1 or self.success_threshold < 1:
            raise ValueError("breaker thresholds must be >= 1")
        if self.reset_timeout_s <= 0 or self.probe_interval_s <= 0:
            raise ValueError("breaker timers must be positive")


class CircuitBreaker:
    """One breaker instance (see module docstring for the state machine)."""

    def __init__(self, key: str, config: BreakerConfig = BreakerConfig()) -> None:
        self.key = key
        self.config = config
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.probe_successes = 0
        self.opened_at = 0.0
        self.last_probe_at = -1.0
        self.transitions: List[Tuple[float, str]] = []

    # -- queries ---------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a command be issued through this breaker at sim-time ``now``?

        In HALF_OPEN this *admits a probe* (and spends the probe slot), so
        call it once per issue decision, not speculatively.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.config.reset_timeout_s:
                self._transition(now, BreakerState.HALF_OPEN)
            else:
                return False
        # HALF_OPEN: one probe per probe_interval
        if self.last_probe_at < 0 or now - self.last_probe_at >= self.config.probe_interval_s:
            self.last_probe_at = now
            return True
        return False

    @property
    def is_open(self) -> bool:
        return self.state is BreakerState.OPEN

    def effectively_open(self, now: float) -> bool:
        """OPEN and still inside the reset timeout.

        An OPEN breaker whose reset timeout has elapsed is ready to probe —
        for capacity planning (e.g. the degradation ladder) it should count
        as recovering, not as dark, even though no traffic has arrived yet
        to drive the OPEN → HALF_OPEN transition.
        """
        return (
            self.state is BreakerState.OPEN
            and now - self.opened_at < self.config.reset_timeout_s
        )

    # -- outcome feedback ------------------------------------------------------

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.probe_successes += 1
            if self.probe_successes >= self.config.success_threshold:
                self._transition(now, BreakerState.CLOSED)

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # the probe failed: back to OPEN, rearm the reset timer
            self._transition(now, BreakerState.OPEN)
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._transition(now, BreakerState.OPEN)

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Full state-machine state; key and config are constructor inputs."""
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "probe_successes": self.probe_successes,
            "opened_at": self.opened_at,
            "last_probe_at": self.last_probe_at,
            "transitions": list(self.transitions),
        }

    def restore_state(self, state: dict) -> None:
        self.state = BreakerState(state["state"])
        self.consecutive_failures = state["consecutive_failures"]
        self.probe_successes = state["probe_successes"]
        self.opened_at = state["opened_at"]
        self.last_probe_at = state["last_probe_at"]
        self.transitions = [(when, what) for when, what in state["transitions"]]

    # -- internals -------------------------------------------------------------

    def _transition(self, now: float, state: BreakerState) -> None:
        self.transitions.append((now, f"{self.state.value}->{state.value}"))
        self.state = state
        if state is BreakerState.OPEN:
            self.opened_at = now
            self.probe_successes = 0
        elif state is BreakerState.HALF_OPEN:
            self.last_probe_at = -1.0
            self.probe_successes = 0
        else:  # CLOSED
            self.consecutive_failures = 0


class BreakerBoard:
    """A registry of breakers keyed by component (``"ch0"``, ``"ch1/die2"``).

    Keys are created on first use; iteration helpers return them sorted so
    any derived report or log stays deterministic.
    """

    def __init__(self, config: BreakerConfig = BreakerConfig()) -> None:
        self.config = config
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, key: str) -> CircuitBreaker:
        if key not in self._breakers:
            self._breakers[key] = CircuitBreaker(key, self.config)
        return self._breakers[key]

    def open_keys(self, now: Optional[float] = None) -> List[str]:
        return sorted(
            k for k, b in self._breakers.items()
            if (b.is_open if now is None else b.effectively_open(now))
        )

    def open_count(self, now: Optional[float] = None) -> int:
        """Open breakers; with ``now``, only those still inside their reset
        timeout (see :meth:`CircuitBreaker.effectively_open`)."""
        return sum(
            1 for b in self._breakers.values()
            if (b.is_open if now is None else b.effectively_open(now))
        )

    def transition_log(self) -> List[str]:
        lines: List[str] = []
        for key in sorted(self._breakers):
            for when, what in self._breakers[key].transitions:
                lines.append(f"t={when * 1e6:.1f}us breaker[{key}] {what}")
        return lines

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Per-key breaker states, sorted for a canonical encoding."""
        return {
            "breakers": [
                (key, self._breakers[key].snapshot_state())
                for key in sorted(self._breakers)
            ],
        }

    def restore_state(self, state: dict) -> None:
        self._breakers = {}
        for key, breaker_state in state["breakers"]:
            self.breaker(key).restore_state(breaker_state)


__all__ = ["BreakerBoard", "BreakerConfig", "BreakerState", "CircuitBreaker"]
