"""repro.resilience — deterministic resilience policies for the SSD stack.

Retry/timeout/hedging policies, per-channel circuit breakers, token-bucket
admission control, and the graceful-degradation ladder, all driven by the
simulation clock and explicitly seeded PRNG streams so chaos campaigns stay
reproducible. The host and FTL layers never import this package — policies
are injected duck-typed (``admission=``, ``degradation=``, ``slo=``) to keep
the device-side trusted computing base small (IceClave §4.5); only the CLI
and the lab compose the full stack.
"""

from repro.resilience.admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.degrade import DegradationLadder, DegradeConfig, ServiceMode
from repro.resilience.lab import (
    ArmReport,
    LabConfig,
    PolicySuite,
    ResilienceReport,
    run_resilience,
    run_resilience_arm,
)
from repro.resilience.policy import HedgePolicy, RetryPolicy, TimeoutBudget

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ArmReport",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "DegradationLadder",
    "DegradeConfig",
    "HedgePolicy",
    "LabConfig",
    "PolicySuite",
    "ResilienceReport",
    "RetryPolicy",
    "ServiceMode",
    "TimeoutBudget",
    "TokenBucket",
    "run_resilience",
    "run_resilience_arm",
]
