"""Admission control: token bucket + queue-depth backpressure.

Unbounded queueing converts overload into unbounded tail latency; a real
controller sheds load instead. :class:`AdmissionController` gates
:meth:`NvmeQueuePair.submit <repro.host.nvme.NvmeQueuePair.submit>` (injected
as a duck-typed ``admission`` object, so the host layer never imports this
package): a command is admitted only if the sim-time token bucket has a
token *and* the queue is below its backpressure threshold. A refused command
completes immediately with a retryable NVMe status — the client backs off
and retries, which is bounded, instead of parking on a queue forever.

The bucket refills as a pure function of the sim clock (``rate * elapsed``),
so admission decisions are deterministic given the same request schedule.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionConfig:
    rate_per_s: float = 100_000.0  # sustained tokens (commands) per sim-second
    burst: float = 64.0  # bucket capacity
    max_queued: int = 128  # in-flight + waiting beyond which we shed

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0 or self.burst < 1:
            raise ValueError("token bucket needs positive rate and burst >= 1")
        if self.max_queued < 1:
            raise ValueError("max_queued must be >= 1")


class TokenBucket:
    """Sim-clock-driven token bucket (no wall clock, no background task)."""

    def __init__(self, rate_per_s: float, burst: float) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = burst
        self._last_refill = 0.0

    def try_take(self, now: float, tokens: float = 1.0) -> bool:
        if now > self._last_refill:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last_refill) * self.rate_per_s
            )
            self._last_refill = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


class AdmissionController:
    """The object :class:`NvmeQueuePair` consults before taking a command."""

    def __init__(self, config: AdmissionConfig = AdmissionConfig()) -> None:
        self.config = config
        self.bucket = TokenBucket(config.rate_per_s, config.burst)
        self.admitted = 0
        self.shed_rate = 0  # refused: bucket empty
        self.shed_queue = 0  # refused: queue-depth backpressure

    def admit(self, now: float, queued: int) -> bool:
        """True to accept the command; False to shed it (retryable reject)."""
        if queued >= self.config.max_queued:
            self.shed_queue += 1
            return False
        if not self.bucket.try_take(now):
            self.shed_rate += 1
            return False
        self.admitted += 1
        return True

    @property
    def shed(self) -> int:
        return self.shed_rate + self.shed_queue


__all__ = ["AdmissionConfig", "AdmissionController", "TokenBucket"]
