"""Graceful-degradation ladder: NORMAL → DEGRADED_READONLY → FAILSAFE.

IceClave's §4.5 containment story (ThrowOutTEE) treats a misbehaving tenant
as something to shed, not something to crash on; the SoK/Elasticlave
availability critique asks the same of the *device*: when reliability
counters say the hardware is sick, serve what can still be served correctly
instead of failing every request.

The ladder's modes and their guarantees:

- ``NORMAL`` — full service.
- ``DEGRADED_READONLY`` — reads of committed data continue (still
  integrity-verified end to end); new writes are refused with a retryable
  status so a flaky device cannot accept data it may not be able to commit.
- ``FAILSAFE`` — only breaker probes and diagnostics; offloads are refused.

Transitions are driven by reliability inputs (open breakers, integrity
violations, fatal faults) and the sim clock; after ``recovery_window_s``
with no new trips the ladder climbs back one rung. All state changes are
timestamped in ``transitions`` so a report can prove when degradation began
and ended, deterministically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class ServiceMode(enum.Enum):
    NORMAL = "normal"
    DEGRADED_READONLY = "degraded_readonly"
    FAILSAFE = "failsafe"


_LADDER = [ServiceMode.NORMAL, ServiceMode.DEGRADED_READONLY, ServiceMode.FAILSAFE]


@dataclass(frozen=True)
class DegradeConfig:
    # rung 1: DEGRADED_READONLY
    open_breakers_readonly: int = 2
    integrity_violations_readonly: int = 2
    # rung 2: FAILSAFE
    open_breakers_failsafe: int = 3
    integrity_violations_failsafe: int = 4
    fatal_faults_failsafe: int = 8
    recovery_window_s: float = 5e-3  # clean time before climbing back a rung

    def __post_init__(self) -> None:
        if self.recovery_window_s <= 0:
            raise ValueError("recovery window must be positive")


class DegradationLadder:
    """Reliability-counter-driven service-mode state machine."""

    def __init__(self, config: DegradeConfig = DegradeConfig()) -> None:
        self.config = config
        self.mode = ServiceMode.NORMAL
        self.integrity_violations = 0
        self.fatal_faults = 0
        self._open_breakers = 0
        self._last_trip_at = -1.0
        self._last_violation_at = -1.0
        self.transitions: List[Tuple[float, str]] = []

    # -- inputs ---------------------------------------------------------------

    def note_integrity_violation(self, now: float) -> None:
        self.integrity_violations += 1
        self._last_violation_at = now
        self.evaluate(now)

    def note_fatal_fault(self, now: float) -> None:
        self.fatal_faults += 1
        self.evaluate(now)

    def note_open_breakers(self, now: float, count: int) -> None:
        self._open_breakers = count
        self.evaluate(now)

    # -- queries --------------------------------------------------------------

    def allows_writes(self) -> bool:
        return self.mode is ServiceMode.NORMAL

    def allows_reads(self) -> bool:
        return self.mode is not ServiceMode.FAILSAFE

    def allows_offload(self) -> bool:
        return self.mode is ServiceMode.NORMAL

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, now: float) -> ServiceMode:
        """Re-derive the mode from the current counters at sim-time ``now``."""
        cfg = self.config
        # integrity violations age out after a clean recovery window — they
        # must decay on their own, or a violation-pinned mode could never
        # climb (the target would stay degraded forever)
        if self.integrity_violations:
            quiet_since = max(self._last_trip_at, self._last_violation_at)
            if quiet_since >= 0 and now - quiet_since >= cfg.recovery_window_s:
                self.integrity_violations = 0
        if (
            self._open_breakers >= cfg.open_breakers_failsafe
            or self.integrity_violations >= cfg.integrity_violations_failsafe
            or self.fatal_faults >= cfg.fatal_faults_failsafe
        ):
            target = ServiceMode.FAILSAFE
        elif (
            self._open_breakers >= cfg.open_breakers_readonly
            or self.integrity_violations >= cfg.integrity_violations_readonly
        ):
            target = ServiceMode.DEGRADED_READONLY
        else:
            target = ServiceMode.NORMAL

        current = _LADDER.index(self.mode)
        wanted = _LADDER.index(target)
        if wanted > current:
            self._set_mode(now, target)
            self._last_trip_at = now
        elif wanted < current:
            # climb back ONE rung per clean recovery window (hysteresis);
            # breaker state is whatever the board reports right now
            if self._last_trip_at < 0 or now - self._last_trip_at >= cfg.recovery_window_s:
                self._set_mode(now, _LADDER[current - 1])
                self._last_trip_at = now
        return self.mode

    def _set_mode(self, now: float, mode: ServiceMode) -> None:
        self.transitions.append((now, f"{self.mode.value}->{mode.value}"))
        self.mode = mode

    def transition_log(self) -> List[str]:
        return [f"t={when * 1e6:.1f}us mode {what}" for when, what in self.transitions]

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Mode, counters and hysteresis timers; config is constructor input."""
        return {
            "mode": self.mode.value,
            "integrity_violations": self.integrity_violations,
            "fatal_faults": self.fatal_faults,
            "open_breakers": self._open_breakers,
            "last_trip_at": self._last_trip_at,
            "last_violation_at": self._last_violation_at,
            "transitions": list(self.transitions),
        }

    def restore_state(self, state: dict) -> None:
        self.mode = ServiceMode(state["mode"])
        self.integrity_violations = state["integrity_violations"]
        self.fatal_faults = state["fatal_faults"]
        self._open_breakers = state["open_breakers"]
        self._last_trip_at = state["last_trip_at"]
        self._last_violation_at = state["last_violation_at"]
        self.transitions = [(when, what) for when, what in state["transitions"]]


__all__ = ["DegradationLadder", "DegradeConfig", "ServiceMode"]
