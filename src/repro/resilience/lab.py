"""The resilience lab: chaos plans as availability experiments.

PR 1's chaos harness answers "does the *data* survive faults?"; this lab
answers the production question on top of it: "does the *service* survive
faults?". It drives an open-loop, sim-time request stream through a
multi-channel NVMe front (one :class:`~repro.host.nvme.NvmeQueuePair` per
channel, each page mirrored on a replica channel) while a deterministic
:class:`~repro.faults.plan.FaultPlan` degrades the device — read-retry
latency storms, poisoned pages, a die that hangs mid-run, protected-DRAM
corruption, power-loss stalls — and measures per-request availability and
tail latency with and without the resilience policies engaged.

Policies-off is the PR 1 world: a request that hits a fault surfaces an
NVMe error (or wedges forever behind a dead die). Policies-on engages the
full toolkit — per-command sim-time timeouts, bounded seeded-backoff
retries to the replica channel, hedged reads at the observed latency
quantile, per-channel circuit breakers with half-open probes, token-bucket
admission, and the NORMAL → DEGRADED_READONLY → FAILSAFE ladder.

Everything — arrivals, service jitter, fault schedule, backoff jitter — is
derived from the run seed through :class:`~repro.crypto.prng.XorShift64`
streams, so the same seed twice produces byte-identical reports; the CLI
(``python -m repro resilience``) proves that on every invocation.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.crypto.prng import XorShift64
from repro.faults.plan import FaultKind, FaultPlan, FaultPlanConfig
from repro.flash.ecc import EccUncorrectableError
from repro.host.nvme import NvmeCommand, NvmeQueuePair, NvmeStatus
from repro.host.pcie import PcieLink
from repro.platform.metrics import SloObjectives, SloTracker
from repro.resilience.admission import AdmissionConfig, AdmissionController
from repro.resilience.breaker import BreakerBoard, BreakerConfig
from repro.resilience.degrade import DegradationLadder, DegradeConfig
from repro.resilience.policy import HedgePolicy, RetryPolicy, TimeoutBudget
from repro.sim.engine import Engine, Event

PAGE_BYTES = 4096


@dataclass(frozen=True)
class LabConfig:
    """Shape of one resilience experiment (both arms share it)."""

    channels: int = 4
    ops: int = 2000
    working_set: int = 128
    interarrival_s: float = 25e-6
    write_fraction: float = 0.25
    base_latency_s: float = 60e-6
    jitter_s: float = 20e-6
    # how plan events translate into device misbehaviour
    storm_window_s: float = 1.5e-3
    storm_factor: float = 8.0
    storm_errors: int = 2
    stall_s: float = 1.2e-3
    drain_grace_s: float = 20e-3

    def horizon(self) -> float:
        return self.ops * self.interarrival_s + self.drain_grace_s


@dataclass(frozen=True)
class PolicySuite:
    """The resilience toolkit configuration for the policies-on arm."""

    timeouts: TimeoutBudget = TimeoutBudget(
        command_timeout_s=600e-6, request_deadline_s=8e-3
    )
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    hedge: HedgePolicy = field(default_factory=HedgePolicy)
    breaker: BreakerConfig = BreakerConfig()
    admission: AdmissionConfig = AdmissionConfig(
        rate_per_s=120_000.0, burst=96.0, max_queued=96
    )
    # a 2 ms recovery window lets the ladder climb FAILSAFE -> NORMAL inside
    # one request deadline, so a transient all-channels event (a power-loss
    # stall) costs latency, not availability
    degrade: DegradeConfig = DegradeConfig(recovery_window_s=2e-3)
    defer_interval_s: float = 600e-6  # re-check cadence while degraded


@dataclass
class _Channel:
    """Fault-visible state of one channel (≈ one die in this lab)."""

    index: int
    qp: NvmeQueuePair
    rng: XorShift64
    slow_until: float = -1.0
    slow_factor: float = 1.0
    dead_from: float = math.inf
    error_credits: int = 0  # next N commands fail with an ECC uncorrectable

    def service_latency(
        self, now: float, base: float, jitter: float, stall_until: float
    ) -> float:
        if now >= self.dead_from:
            return math.inf  # hung die: the command never completes
        latency = base + jitter * self.rng.next_float()
        if now < self.slow_until:
            latency *= self.slow_factor
        if now < stall_until:
            latency += stall_until - now  # power-loss stall delays service
        return latency

    def take_error(self) -> bool:
        if self.error_credits > 0:
            self.error_credits -= 1
            return True
        return False


@dataclass
class _Request:
    rid: int
    opcode: str  # "read" | "write"
    lpa: int
    start: float
    deadline: float
    attempts: int = 0
    done: bool = False
    hedge_event: Optional[Event] = None
    in_flight: int = 0  # outstanding commands (primary + hedge)


@dataclass
class ArmReport:
    """Outcome of one arm (policies on or off)."""

    policies: str  # "on" | "off"
    availability: float
    requests: int
    failures: int
    p50_read_s: float
    p99_read_s: float
    counters: Dict[str, int] = field(default_factory=dict)
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    slo_lines: List[str] = field(default_factory=list)
    event_log: List[str] = field(default_factory=list)

    def fingerprint_lines(self) -> List[str]:
        parts = [
            f"arm={self.policies}",
            f"availability={self.availability!r}",
            f"requests={self.requests}",
            f"failures={self.failures}",
            f"p50_read={self.p50_read_s!r}",
            f"p99_read={self.p99_read_s!r}",
        ]
        parts += [f"counter.{k}={v}" for k, v in sorted(self.counters.items())]
        parts += [f"reason.{k}={v}" for k, v in sorted(self.failure_reasons.items())]
        parts += self.slo_lines
        parts += self.event_log
        return parts


class _Arm:
    """One deterministic execution of the request stream against the plan."""

    def __init__(
        self,
        seed: int,
        config: LabConfig,
        plan: FaultPlan,
        suite: Optional[PolicySuite],
    ) -> None:
        self.seed = seed
        self.config = config
        self.plan = plan
        self.suite = suite
        self.engine = Engine()
        self.slo = SloTracker(SloObjectives(availability=0.99, p99_read_s=2e-3))
        self.admission = (
            AdmissionController(suite.admission) if suite is not None else None
        )
        self.channels = [
            _Channel(
                index=i,
                qp=NvmeQueuePair(
                    self.engine,
                    PcieLink(),
                    queue_depth=64,
                    admission=self.admission,
                ),
                rng=XorShift64(((seed + 1) << 8) ^ (0x5E11 + i)),
            )
            for i in range(config.channels)
        ]
        self.board = BreakerBoard(suite.breaker) if suite is not None else None
        self.ladder = DegradationLadder(suite.degrade) if suite is not None else None
        # the retry PRNG is re-seeded per run so two runs of the same seed
        # replay identical backoff jitter
        self.retry = (
            RetryPolicy(
                max_attempts=suite.retry.max_attempts,
                base_delay_s=suite.retry.base_delay_s,
                multiplier=suite.retry.multiplier,
                cap_s=suite.retry.cap_s,
                jitter_fraction=suite.retry.jitter_fraction,
                seed=(seed << 4) ^ 0xB0FF,
            )
            if suite is not None
            else None
        )
        self.arrival_rng = XorShift64((seed << 2) ^ 0xA221)
        self.stall_until = -1.0
        self.dead_lpas: Set[int] = set()  # client gave up on these pages
        self.counters: Dict[str, int] = {}
        self.failure_reasons: Dict[str, int] = {}
        self.event_log: List[str] = []
        self.live_requests: List[_Request] = []
        # lpas whose primary (or both) copies the plan poisoned; reads fail,
        # a successful overwrite remaps the data and clears the poison
        self.poisoned_primary: Set[int] = set()
        self.poisoned_both: Set[int] = set()

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _log(self, message: str) -> None:
        self.event_log.append(f"t={self.engine.now * 1e3:.3f}ms {message}")

    # -- fault translation -----------------------------------------------------

    def _schedule_plan(self) -> None:
        """Translate op-indexed plan events into sim-time device faults."""
        cfg = self.config
        for event in self.plan.events:
            when = event.op_index * cfg.interarrival_s
            channel = self.channels[event.param % cfg.channels]
            lpa = event.param % cfg.working_set
            if event.kind is FaultKind.READ_BURST:
                self.engine.schedule_at(
                    when, self._make_storm(channel), name="fault-storm"
                )
            elif event.kind is FaultKind.UNCORRECTABLE_PAGE:
                self.engine.schedule_at(
                    when, self._make_poison(lpa, both=False), name="fault-poison"
                )
            elif event.kind is FaultKind.HARD_UNCORRECTABLE:
                self.engine.schedule_at(
                    when, self._make_poison(lpa, both=True), name="fault-poison-hard"
                )
            elif event.kind is FaultKind.DIE_FAILURE:
                self.engine.schedule_at(
                    when, self._make_die_failure(channel), name="fault-die"
                )
            elif event.kind is FaultKind.DRAM_CORRUPTION:
                self.engine.schedule_at(
                    when, self._make_integrity_hit(event.param), name="fault-dram"
                )
            else:  # POWER_LOSS / POWER_LOSS_MID_GC: a full-device stall
                self.engine.schedule_at(when, self._make_stall(), name="fault-stall")

    def _make_storm(self, channel: _Channel) -> Callable[[], None]:
        def fire() -> None:
            channel.slow_until = self.engine.now + self.config.storm_window_s
            channel.slow_factor = self.config.storm_factor
            channel.error_credits += self.config.storm_errors
            self._log(f"fault: retry storm on ch{channel.index}")
        return fire

    def _make_poison(self, lpa: int, both: bool) -> Callable[[], None]:
        def fire() -> None:
            self.poisoned_primary.add(lpa)
            if both:
                self.poisoned_both.add(lpa)
            which = "both copies" if both else "primary copy"
            self._log(f"fault: lpa {lpa} poisoned ({which})")
        return fire

    def _make_die_failure(self, channel: _Channel) -> Callable[[], None]:
        def fire() -> None:
            channel.dead_from = self.engine.now
            self._log(f"fault: die on ch{channel.index} hung (no completions)")
        return fire

    def _make_integrity_hit(self, param: int) -> Callable[[], None]:
        def fire() -> None:
            self._count("integrity_violations")
            self._log(f"fault: protected-DRAM corruption (tenant {param % 2 + 1})")
            if self.ladder is not None:
                before = self.ladder.mode
                self.ladder.note_integrity_violation(self.engine.now)
                if self.ladder.mode is not before:
                    self._log(f"mode -> {self.ladder.mode.value}")
        return fire

    def _make_stall(self) -> Callable[[], None]:
        def fire() -> None:
            self.stall_until = max(
                self.stall_until, self.engine.now + self.config.stall_s
            )
            self._log("fault: power-loss stall (all channels)")
        return fire

    # -- request generation ----------------------------------------------------

    def _schedule_arrivals(self) -> None:
        cfg = self.config
        deadline = (
            self.suite.timeouts.request_deadline_s
            if self.suite is not None
            else cfg.drain_grace_s
        )
        for i in range(cfg.ops):
            start = i * cfg.interarrival_s
            opcode = (
                "write"
                if self.arrival_rng.next_float() < cfg.write_fraction
                else "read"
            )
            lpa = self.arrival_rng.next_below(cfg.working_set)
            request = _Request(
                rid=i, opcode=opcode, lpa=lpa, start=start,
                deadline=start + deadline,
            )
            self.engine.schedule_at(start, self._make_arrival(request), name="arrival")

    def _make_arrival(self, request: _Request) -> Callable[[], None]:
        def fire() -> None:
            if request.opcode == "read" and request.lpa in self.dead_lpas:
                # the client already took an unrecoverable error for this
                # page and dropped it; re-reading would re-fail forever
                self._count("reads_skipped_dead_lpa")
                return
            self.live_requests.append(request)
            self._issue(request)
        return fire

    # -- channel selection -----------------------------------------------------

    def _primary(self, lpa: int) -> int:
        return lpa % self.config.channels

    def _replica(self, lpa: int) -> int:
        return (lpa + self.config.channels // 2) % self.config.channels

    def _pick_channel(
        self, request: _Request, exclude: Optional[int] = None
    ) -> Optional[int]:
        now = self.engine.now
        for index in (self._primary(request.lpa), self._replica(request.lpa)):
            if index == exclude:
                continue
            if self.board is None or self.board.breaker(f"ch{index}").allow(now):
                return index
        return None

    # -- issue / completion ----------------------------------------------------

    def _issue(self, request: _Request, exclude: Optional[int] = None,
               hedged: bool = False) -> None:
        if request.done:
            return
        now = self.engine.now
        cfg = self.config

        # degraded-mode gates (policies on only): a gated request is parked
        # and re-evaluated, not failed — degradation is device state, and the
        # deadline still bounds how long the client will wait it out
        if self.ladder is not None:
            if request.opcode == "write" and not self.ladder.allows_writes():
                self._count("writes_deferred_degraded")
                self._defer(request, "degraded_readonly")
                return
            if request.opcode == "read" and not self.ladder.allows_reads():
                self._count("reads_deferred_failsafe")
                self._defer(request, "failsafe")
                return

        channel_index = (
            self._pick_channel(request, exclude)
            if self.suite is not None
            else self._primary(request.lpa)
        )
        if channel_index is None:
            # every eligible channel's breaker is open: park the request
            # until a breaker half-opens rather than burning retry attempts
            self._count("no_channel_available")
            self._defer(request, "breakers_open")
            return
        channel = self.channels[channel_index]

        latency = channel.service_latency(
            now, cfg.base_latency_s, cfg.jitter_s, self.stall_until
        )
        failure: Optional[Exception] = None
        if request.opcode == "read":
            if request.lpa in self.poisoned_both:
                failure = EccUncorrectableError(
                    "hard uncorrectable page", raw_errors=999
                )
            elif (
                request.lpa in self.poisoned_primary
                and channel_index == self._primary(request.lpa)
            ):
                failure = EccUncorrectableError(
                    "uncorrectable page copy", raw_errors=200
                )
        if failure is None and channel.take_error():
            failure = EccUncorrectableError("read-retry storm residue", raw_errors=120)

        def device_op() -> None:
            if failure is not None:
                raise failure

        request.attempts += 1
        request.in_flight += 1
        self._count("commands_issued")
        if hedged:
            self._count("hedges_issued")
        timeout = (
            self.suite.timeouts.command_timeout_s if self.suite is not None else None
        )
        channel.qp.submit(
            request.opcode,
            PAGE_BYTES,
            on_done=self._make_completion(request, channel_index, hedged),
            device_op=device_op,
            device_latency=latency,
            timeout=timeout,
        )

        # hedge the first read attempt once it outlives the latency quantile
        # (done can flip inside submit: an admission shed completes inline)
        if (
            self.suite is not None
            and not request.done
            and not hedged
            and request.opcode == "read"
            and request.hedge_event is None
            and request.in_flight > 0
            and self._primary(request.lpa) != self._replica(request.lpa)
        ):
            delay = self.suite.hedge.hedge_delay(self.slo.sorted_latencies("read"))
            request.hedge_event = self.engine.schedule(
                delay, self._make_hedge(request, channel_index), name="hedge"
            )

    def _make_hedge(self, request: _Request, first_channel: int) -> Callable[[], None]:
        def fire() -> None:
            if request.done or request.in_flight == 0:
                return
            self._issue(request, exclude=first_channel, hedged=True)
        return fire

    def _make_completion(
        self, request: _Request, channel_index: int, hedged: bool
    ) -> Callable[[NvmeCommand], None]:
        def on_done(command: NvmeCommand) -> None:
            request.in_flight -= 1
            now = self.engine.now
            # feed the breaker (admission sheds say nothing about the channel)
            if (
                self.board is not None
                and command.status is not NvmeStatus.COMMAND_INTERRUPTED
            ):
                breaker = self.board.breaker(f"ch{channel_index}")
                if command.status.is_error:
                    breaker.record_failure(now)
                else:
                    breaker.record_success(now)
                if self.ladder is not None:
                    before = self.ladder.mode
                    self.ladder.note_open_breakers(now, self.board.open_count(now))
                    if self.ladder.mode is not before:
                        self._log(f"mode -> {self.ladder.mode.value}")
            if request.done:
                self._count("late_completions")
                return
            if not command.status.is_error:
                if request.opcode == "write":
                    # the overwrite remapped the data onto healthy pages
                    self.poisoned_primary.discard(request.lpa)
                    self.poisoned_both.discard(request.lpa)
                    self.dead_lpas.discard(request.lpa)
                if hedged:
                    self._count("hedge_wins")
                self._succeed(request)
                return
            # a failed attempt: decide whether/where to try again
            self._count(f"status.{command.status.name}")
            if command.status is NvmeStatus.COMMAND_ABORTED:
                self._count("command_timeouts")
            terminal_loss = (
                request.opcode == "read" and request.lpa in self.poisoned_both
            )
            if self.suite is None:
                if terminal_loss:
                    self.dead_lpas.add(request.lpa)
                if request.in_flight == 0:
                    self._fail(request, command.status.name.lower())
                return
            if terminal_loss:
                # no copy can serve this page: an honest data loss; retrying
                # would only burn the error budget
                self.dead_lpas.add(request.lpa)
                self._fail(request, "data_loss_both_copies")
                return
            self._backoff_retry(
                request, reason=command.status.name.lower(), exclude=channel_index
            )
        return on_done

    # -- retry / outcome -------------------------------------------------------

    def _backoff_retry(self, request: _Request, reason: str,
                       exclude: Optional[int] = None) -> None:
        if request.done or request.in_flight > 0:
            return  # a sibling (hedge) attempt is still racing; let it finish
        assert self.retry is not None
        now = self.engine.now
        if not self.retry.allows(request.attempts):
            self._fail(request, f"retries_exhausted({reason})")
            return
        delay = self.retry.delay(request.attempts)
        if now + delay >= request.deadline:
            self._fail(request, f"deadline_exceeded({reason})")
            return
        self._count("retries")
        self.engine.schedule(delay, self._make_retry(request, exclude), name="retry")

    def _defer(self, request: _Request, why: str) -> None:
        """Park a request the device cannot serve right now (degraded mode,
        all breakers open) until conditions change.

        Deferral is paced by a fixed sim-time interval and bounded by the
        request deadline (not by retry attempts — this is device state, not
        per-request bad luck). Each wake-up re-evaluates the ladder, which
        is also how the mode climbs back once the recovery window has run
        clean.
        """
        assert self.suite is not None
        delay = self.suite.defer_interval_s
        if self.engine.now + delay >= request.deadline:
            self._fail(request, f"deadline_exceeded({why})")
            return

        def wake() -> None:
            if request.done:
                return
            # refresh the ladder's view before re-checking the gates: an OPEN
            # breaker past its reset timeout no longer counts against the
            # mode, which is what lets the ladder climb back out of FAILSAFE
            if self.ladder is not None and self.board is not None:
                self.ladder.note_open_breakers(
                    self.engine.now, self.board.open_count(self.engine.now)
                )
            self._issue(request)

        self.engine.schedule(delay, wake, name="defer")

    def _make_retry(
        self, request: _Request, exclude: Optional[int]
    ) -> Callable[[], None]:
        def fire() -> None:
            if request.done:
                return
            self._issue(request, exclude=exclude)
        return fire

    def _settle(self, request: _Request) -> None:
        request.done = True
        if request.hedge_event is not None:
            self.engine.cancel(request.hedge_event)
            request.hedge_event = None
        self.live_requests.remove(request)

    def _succeed(self, request: _Request) -> None:
        self._settle(request)
        self.slo.record(
            self.engine.now, request.opcode, self.engine.now - request.start, ok=True
        )

    def _fail(self, request: _Request, reason: str) -> None:
        self._settle(request)
        self.failure_reasons[reason] = self.failure_reasons.get(reason, 0) + 1
        self.slo.record(
            self.engine.now, request.opcode, self.engine.now - request.start, ok=False
        )

    # -- the run ---------------------------------------------------------------

    def run(self) -> ArmReport:
        self._schedule_plan()
        self._schedule_arrivals()
        horizon = self.config.horizon()
        self.engine.run(until=horizon)
        # anything still outstanding is wedged behind a hung die (or past the
        # horizon): account it as failed at the horizon, not ignored
        for request in sorted(self.live_requests, key=lambda r: r.rid):
            request.done = True
            self.failure_reasons["unfinished_at_horizon"] = (
                self.failure_reasons.get("unfinished_at_horizon", 0) + 1
            )
            self.slo.record(horizon, request.opcode, horizon - request.start, ok=False)
        self.live_requests = []

        for channel in self.channels:
            if channel.qp.timeouts:
                self._count("qp_timeouts", channel.qp.timeouts)
            if channel.qp.admission_rejections:
                self._count("admission_rejections", channel.qp.admission_rejections)
        if self.board is not None:
            self.event_log.extend(self.board.transition_log())
            transitions = sum(
                len(self.board.breaker(f"ch{i}").transitions)
                for i in range(self.config.channels)
            )
            if transitions:
                self._count("breaker_transitions", transitions)
        if self.ladder is not None:
            self.event_log.extend(self.ladder.transition_log())

        return ArmReport(
            policies="off" if self.suite is None else "on",
            availability=self.slo.availability(),
            requests=self.slo.total,
            failures=self.slo.failures,
            p50_read_s=self.slo.percentile("read", 50),
            p99_read_s=self.slo.percentile("read", 99),
            counters=dict(self.counters),
            failure_reasons=dict(self.failure_reasons),
            slo_lines=self.slo.summary_lines(),
            event_log=list(self.event_log),
        )


@dataclass
class ResilienceReport:
    """Both arms of one experiment plus the comparison the CLI prints."""

    seed: int
    ops: int
    channels: int
    plan_summary: Dict[str, int]
    baseline: ArmReport  # policies off
    resilient: ArmReport  # policies on

    def availability_gain(self) -> float:
        return self.resilient.availability - self.baseline.availability

    def p99_speedup(self) -> float:
        if self.resilient.p99_read_s <= 0:
            return float("inf")
        return self.baseline.p99_read_s / self.resilient.p99_read_s

    def fingerprint(self) -> str:
        parts = [f"seed={self.seed}", f"ops={self.ops}", f"channels={self.channels}"]
        parts += [f"plan.{k}={v}" for k, v in sorted(self.plan_summary.items())]
        parts += self.baseline.fingerprint_lines()
        parts += self.resilient.fingerprint_lines()
        return "\n".join(parts)

    def format(self) -> str:
        lines = [
            f"resilience experiment: seed {self.seed}, {self.ops} requests,"
            f" {self.channels} channels",
            "  fault plan      : "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.plan_summary.items())),
        ]
        for arm in (self.baseline, self.resilient):
            label = "policies OFF " if arm.policies == "off" else "policies ON  "
            lines.append(
                f"  {label}   : availability={arm.availability * 100:8.4f}%"
                f"  p50={arm.p50_read_s * 1e6:8.1f}us"
                f"  p99={arm.p99_read_s * 1e6:8.1f}us"
                f"  failures={arm.failures}"
            )
        lines.append(
            f"  delta           : availability {self.availability_gain() * 100:+.4f} pp,"
            f" p99 read {self.p99_speedup():.1f}x faster with policies"
        )
        on = self.resilient.counters
        lines.append(
            "  policy activity : "
            f"retries={on.get('retries', 0)}"
            f" hedges={on.get('hedges_issued', 0)}"
            f" (won {on.get('hedge_wins', 0)})"
            f" timeouts={on.get('command_timeouts', 0)}"
            f" breaker_transitions={on.get('breaker_transitions', 0)}"
            f" shed={on.get('admission_rejections', 0)}"
        )
        return "\n".join(lines)

    def csv_rows(self) -> List[List[str]]:
        """Rows for the ``resilience_slo.csv`` export (deterministic order)."""
        header = [
            "seed", "ops", "channels", "policies", "availability",
            "p50_read_s", "p99_read_s", "failures",
        ]
        rows = [header]
        for arm in (self.baseline, self.resilient):
            rows.append([
                str(self.seed), str(self.ops), str(self.channels), arm.policies,
                repr(arm.availability), repr(arm.p50_read_s),
                repr(arm.p99_read_s), str(arm.failures),
            ])
        return rows


def run_resilience_arm(
    seed: int,
    ops: int,
    policies: bool,
    config: Optional[LabConfig] = None,
    suite: Optional[PolicySuite] = None,
    plan_config: Optional[FaultPlanConfig] = None,
) -> ArmReport:
    """Run a single lab arm (pure function of its arguments).

    The scenario-search layer drives one arm at a time — usually
    policies-off, hunting for the fault×workload×config mix that does the
    most SLO damage — so the two-arm pairing of :func:`run_resilience` is
    wasted work there. Same seed + config + plan ⇒ byte-identical report.
    """
    cfg = config or LabConfig()
    if cfg.ops != ops:
        cfg = dataclasses.replace(cfg, ops=ops)
    plan = FaultPlan.generate(seed, cfg.ops, plan_config or FaultPlanConfig())
    arm_suite = (suite or PolicySuite()) if policies else None
    return _Arm(seed, cfg, plan, suite=arm_suite).run()


def run_resilience(
    seed: int = 7,
    ops: int = 2000,
    config: Optional[LabConfig] = None,
    suite: Optional[PolicySuite] = None,
    plan_config: Optional[FaultPlanConfig] = None,
) -> ResilienceReport:
    """Run both arms (policies off, then on) of one experiment."""
    cfg = config or LabConfig()
    if cfg.ops != ops:
        cfg = dataclasses.replace(cfg, ops=ops)
    plan = FaultPlan.generate(seed, cfg.ops, plan_config or FaultPlanConfig())
    baseline = _Arm(seed, cfg, plan, suite=None).run()
    resilient = _Arm(seed, cfg, plan, suite=suite or PolicySuite()).run()
    return ResilienceReport(
        seed=seed,
        ops=cfg.ops,
        channels=cfg.channels,
        plan_summary={k.value: v for k, v in plan.by_kind().items()},
        baseline=baseline,
        resilient=resilient,
    )


__all__ = [
    "ArmReport",
    "LabConfig",
    "PolicySuite",
    "ResilienceReport",
    "run_resilience",
    "run_resilience_arm",
]
