"""Scenario genomes: the fault × workload × config search space.

A :class:`Scenario` is a plain-primitive genome describing one adversarial
experiment against an existing stack:

- ``target`` — which stack evaluates it (``chaos``, ``oracle``,
  ``resilience``, ``fleet``, ``serve``);
- ``seed``/``ops`` — the run seed and the simulated-operation count (which
  is also the evaluation's budget cost);
- ``faults`` — :class:`~repro.faults.plan.FaultPlanConfig` gene counts;
- ``workload`` — YCSB-style mix weights and Zipf skew
  (:mod:`repro.workloads.ycsb`), shaping the I/O stream;
- ``config`` — per-target stack knobs (policies on/off, channel count,
  replication factor, ...).

Everything round-trips through canonical JSON and is content-fingerprinted,
so corpora deduplicate by genome identity and replay exactly. All mutation
and crossover draws come from the caller's threaded seeded PRNG — the
``search-unseeded-randomness`` lint rule enforces that no operator here
creates its own entropy.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple, Union

from repro.crypto.prng import XorShift64
from repro.faults.plan import FaultPlanConfig
from repro.workloads.ycsb import DEFAULT_MIX, DEFAULT_ZIPF_THETA

GeneValue = Union[bool, int, float, str]

TARGETS: Tuple[str, ...] = ("chaos", "fleet", "oracle", "resilience", "serve")

FAULT_GENES: Tuple[str, ...] = tuple(sorted(FaultPlanConfig().as_dict()))

# the canonical workload dimension (YCSB mix + skew)
DEFAULT_WORKLOAD: Dict[str, GeneValue] = {
    "kind": "ycsb",
    **{op: weight for op, weight in sorted(DEFAULT_MIX.items())},
    "zipf": DEFAULT_ZIPF_THETA,
}
WORKLOAD_WEIGHT_GENES: Tuple[str, ...] = tuple(sorted(DEFAULT_MIX))

# simulated-operation bounds per target: floors keep a run meaningful (the
# chaos harness needs committed state before the fault window; a lab arm
# needs enough requests to show damage), ceilings bound evaluation cost
MIN_OPS: Dict[str, int] = {
    "chaos": 120,
    "oracle": 120,
    "resilience": 50,
    "fleet": 40,
    "serve": 120,
}
MAX_OPS: Dict[str, int] = {
    "chaos": 1600,
    "oracle": 900,
    "resilience": 1200,
    "fleet": 600,
    "serve": 800,
}
DEFAULT_OPS: Dict[str, int] = {
    "chaos": 600,
    "oracle": 400,
    "resilience": 400,
    "fleet": 200,
    "serve": 300,
}

# per-target config genes: default value + the seeded sampler mutation uses
_CONFIG_SAMPLERS: Dict[str, Dict[str, Tuple[GeneValue, Callable[[XorShift64], GeneValue]]]] = {
    "chaos": {},
    "oracle": {
        # where the kill lands, as a fraction of the run (snap to op index)
        "cut_fraction": (0.5, lambda rng: 0.1 + 0.8 * rng.next_float()),
    },
    "resilience": {
        "policies": (False, lambda rng: rng.next_below(2) == 1),
        "channels": (4, lambda rng: 2 + int(rng.next_below(7))),
        "working_set": (128, lambda rng: 32 << int(rng.next_below(4))),
    },
    "fleet": {
        "devices": (6, lambda rng: 3 + int(rng.next_below(6))),
        "replication": (1, lambda rng: 1 + int(rng.next_below(3))),
        "hedge": (False, lambda rng: rng.next_below(2) == 1),
        "device_kills": (1, lambda rng: int(rng.next_below(3))),
    },
    "serve": {
        "tenants": (50, lambda rng: 25 * (1 + int(rng.next_below(6)))),
        "process": ("poisson", lambda rng: ("poisson", "bursty")[rng.next_below(2)]),
    },
}

_SEED_SPACE = 1 << 16


def default_config(target: str) -> Dict[str, GeneValue]:
    return {name: spec[0] for name, spec in sorted(_CONFIG_SAMPLERS[target].items())}


def _canonical(value: object) -> object:
    """Normalize a gene tree for hashing/JSON (sorted keys, plain types)."""
    if isinstance(value, dict):
        return {str(k): _canonical(value[k]) for k in sorted(value)}
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return value  # keep floats as floats; json repr is canonical enough
    return value


@dataclass(frozen=True)
class Scenario:
    """One point of the fault × workload × config space (plain primitives)."""

    target: str
    seed: int
    ops: int
    faults: Dict[str, int] = field(default_factory=dict)
    workload: Dict[str, GeneValue] = field(default_factory=dict)
    config: Dict[str, GeneValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(f"unknown target {self.target!r} (known: {TARGETS})")
        if not MIN_OPS[self.target] <= self.ops <= MAX_OPS[self.target]:
            raise ValueError(
                f"{self.target} ops {self.ops} outside "
                f"[{MIN_OPS[self.target]}, {MAX_OPS[self.target]}]"
            )
        FaultPlanConfig.from_dict(self.faults)  # validates gene names/values

    # -- encoding --------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "seed": self.seed,
            "ops": self.ops,
            "faults": {k: int(v) for k, v in sorted(self.faults.items())},
            "workload": dict(sorted(self.workload.items())),
            "config": dict(sorted(self.config.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        return cls(
            target=str(data["target"]),
            seed=int(data["seed"]),  # type: ignore[call-overload]
            ops=int(data["ops"]),  # type: ignore[call-overload]
            faults=dict(data.get("faults", {})),  # type: ignore[arg-type]
            workload=dict(data.get("workload", {})),  # type: ignore[arg-type]
            config=dict(data.get("config", {})),  # type: ignore[arg-type]
        )

    def canonical_json(self) -> str:
        return json.dumps(
            _canonical(self.to_dict()), sort_keys=True, separators=(",", ":")
        )

    def fingerprint(self) -> str:
        """Content identity: equal genomes ⇔ equal fingerprints."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def plan_config(self) -> FaultPlanConfig:
        return FaultPlanConfig.from_dict(self.faults)

    def describe(self) -> str:
        active = ", ".join(
            f"{k}={v}" for k, v in sorted(self.faults.items()) if v
        ) or "no faults"
        return (
            f"{self.target} seed={self.seed} ops={self.ops} [{active}] "
            f"cfg={dict(sorted(self.config.items()))}"
        )


def default_scenario(target: str) -> Scenario:
    """The canonical starting genome for a target (matches its lab defaults)."""
    return Scenario(
        target=target,
        seed=7,
        ops=DEFAULT_OPS[target],
        faults=FaultPlanConfig().as_dict(),
        workload=dict(DEFAULT_WORKLOAD),
        config=default_config(target),
    )


def random_scenario(target: str, rng: XorShift64) -> Scenario:
    """Sample a fresh genome from the threaded PRNG (seeding phase)."""
    faults = {gene: int(rng.next_below(8)) for gene in FAULT_GENES}
    workload = dict(DEFAULT_WORKLOAD)
    for gene in WORKLOAD_WEIGHT_GENES:
        workload[gene] = round(0.05 + 0.95 * rng.next_float(), 4)
    workload["zipf"] = round(0.1 + 1.3 * rng.next_float(), 4)
    config = {
        name: sampler(rng)
        for name, (_, sampler) in sorted(_CONFIG_SAMPLERS[target].items())
    }
    lo, hi = MIN_OPS[target], MAX_OPS[target]
    return Scenario(
        target=target,
        seed=int(rng.next_below(_SEED_SPACE)),
        ops=lo + int(rng.next_below(hi - lo + 1)),
        faults=faults,
        workload=workload,
        config=config,
    )


# -- mutation / crossover ------------------------------------------------------


def _clamp_ops(target: str, ops: int) -> int:
    return max(MIN_OPS[target], min(MAX_OPS[target], ops))


def _mutate_seed(scenario: Scenario, rng: XorShift64) -> Scenario:
    return dataclasses.replace(scenario, seed=int(rng.next_below(_SEED_SPACE)))


def _mutate_ops(scenario: Scenario, rng: XorShift64) -> Scenario:
    factor = (0.5, 0.75, 1.5, 2.0)[rng.next_below(4)]
    return dataclasses.replace(
        scenario, ops=_clamp_ops(scenario.target, int(scenario.ops * factor))
    )


def _mutate_fault_bump(scenario: Scenario, rng: XorShift64) -> Scenario:
    gene = FAULT_GENES[rng.next_below(len(FAULT_GENES))]
    faults = dict(scenario.faults)
    faults[gene] = faults.get(gene, 0) + 1 + int(rng.next_below(3))
    return dataclasses.replace(scenario, faults=faults)


def _mutate_fault_drop(scenario: Scenario, rng: XorShift64) -> Scenario:
    active = sorted(gene for gene, count in scenario.faults.items() if count)
    if not active:
        return _mutate_fault_bump(scenario, rng)
    gene = active[rng.next_below(len(active))]
    faults = dict(scenario.faults)
    faults[gene] = 0
    return dataclasses.replace(scenario, faults=faults)


def _mutate_fault_resample(scenario: Scenario, rng: XorShift64) -> Scenario:
    gene = FAULT_GENES[rng.next_below(len(FAULT_GENES))]
    faults = dict(scenario.faults)
    faults[gene] = int(rng.next_below(10))
    return dataclasses.replace(scenario, faults=faults)


def _mutate_workload_weight(scenario: Scenario, rng: XorShift64) -> Scenario:
    gene = WORKLOAD_WEIGHT_GENES[rng.next_below(len(WORKLOAD_WEIGHT_GENES))]
    workload = dict(scenario.workload)
    workload[gene] = round(0.05 + 0.95 * rng.next_float(), 4)
    return dataclasses.replace(scenario, workload=workload)


def _mutate_zipf(scenario: Scenario, rng: XorShift64) -> Scenario:
    workload = dict(scenario.workload)
    workload["zipf"] = round(0.1 + 1.3 * rng.next_float(), 4)
    return dataclasses.replace(scenario, workload=workload)


def _mutate_config(scenario: Scenario, rng: XorShift64) -> Scenario:
    samplers = _CONFIG_SAMPLERS[scenario.target]
    if not samplers:
        return _mutate_fault_bump(scenario, rng)
    name = sorted(samplers)[rng.next_below(len(samplers))]
    config = dict(scenario.config)
    config[name] = samplers[name][1](rng)
    return dataclasses.replace(scenario, config=config)


# stable, ordered operator table: the rng picks an index, so two runs with
# the same seed walk exactly the same operator sequence
MUTATORS: Tuple[Tuple[str, Callable[[Scenario, XorShift64], Scenario]], ...] = (
    ("seed", _mutate_seed),
    ("ops", _mutate_ops),
    ("fault-bump", _mutate_fault_bump),
    ("fault-drop", _mutate_fault_drop),
    ("fault-resample", _mutate_fault_resample),
    ("workload-weight", _mutate_workload_weight),
    ("zipf", _mutate_zipf),
    ("config", _mutate_config),
)


def mutate(scenario: Scenario, rng: XorShift64) -> Scenario:
    """Apply one randomly chosen operator (draws only from ``rng``)."""
    _, operator = MUTATORS[rng.next_below(len(MUTATORS))]
    return operator(scenario, rng)


def crossover(a: Scenario, b: Scenario, rng: XorShift64) -> Scenario:
    """Uniform gene-group crossover between two same-target genomes."""
    if a.target != b.target:
        raise ValueError("crossover requires same-target scenarios")
    pick = lambda x, y: x if rng.next_below(2) == 0 else y  # noqa: E731
    faults = {
        gene: int(pick(a.faults.get(gene, 0), b.faults.get(gene, 0)))
        for gene in FAULT_GENES
    }
    workload = dict(DEFAULT_WORKLOAD)
    for gene in sorted(set(a.workload) | set(b.workload)):
        workload[gene] = pick(
            a.workload.get(gene, DEFAULT_WORKLOAD.get(gene, 0.0)),
            b.workload.get(gene, DEFAULT_WORKLOAD.get(gene, 0.0)),
        )
    config = {
        name: pick(a.config.get(name, default), b.config.get(name, default))
        for name, (default, _) in sorted(_CONFIG_SAMPLERS[a.target].items())
    }
    return Scenario(
        target=a.target,
        seed=int(pick(a.seed, b.seed)),
        ops=_clamp_ops(a.target, int(pick(a.ops, b.ops))),
        faults=faults,
        workload=workload,
        config=config,
    )


__all__ = [
    "DEFAULT_OPS",
    "DEFAULT_WORKLOAD",
    "FAULT_GENES",
    "MAX_OPS",
    "MIN_OPS",
    "MUTATORS",
    "Scenario",
    "TARGETS",
    "WORKLOAD_WEIGHT_GENES",
    "crossover",
    "default_config",
    "default_scenario",
    "mutate",
    "random_scenario",
]
