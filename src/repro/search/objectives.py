"""Pluggable objectives: what makes a scenario worth keeping.

An :class:`Objective` scores an :class:`~repro.search.adapters.Evaluation`;
a strictly positive score is a *hit* — the genome demonstrably damaged the
stack in that objective's sense. Scores come straight from existing run
signals (invariant monitors, SLO error-budget burn, durability counters,
oracle divergence); no objective re-runs anything.

Objectives are plain frozen dataclasses with a named scoring function, so
the catalog is data: corpus entries record ``{objective name: score}`` and
replay re-checks the same names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.search.adapters import SLO_AVAILABILITY, Evaluation


@dataclass(frozen=True)
class Objective:
    """One named way a scenario can hurt the stack."""

    name: str
    targets: Tuple[str, ...]
    description: str
    scorer: Callable[[Evaluation], float]

    def applies_to(self, target: str) -> bool:
        return target in self.targets

    def score(self, evaluation: Evaluation) -> float:
        if not self.applies_to(evaluation.target):
            return 0.0
        return max(0.0, self.scorer(evaluation))


def _invariant_score(ev: Evaluation) -> float:
    return ev.signal("invariant_violations") + ev.signal("monitor_violations")


def _budget_burn_score(ev: Evaluation) -> float:
    # only a *blown* error budget counts: burn is failures as a multiple of
    # the budget, so the score is how far past 1.0 the burn went
    return ev.signal("error_budget_burn") - 1.0


def _availability_loss_score(ev: Evaluation) -> float:
    # percentage points below the SLO floor
    return (SLO_AVAILABILITY - ev.signal("availability")) * 100.0


def _data_loss_score(ev: Evaluation) -> float:
    return ev.signal("keys_lost") + ev.signal("lost") + ev.signal("corrupt")


def _exposure_score(ev: Evaluation) -> float:
    return ev.signal("under_replicated_key_seconds")


def _divergence_score(ev: Evaluation) -> float:
    return ev.signal("divergence")


OBJECTIVES: Tuple[Objective, ...] = (
    Objective(
        name="invariant-violation",
        targets=("chaos", "oracle"),
        description="ground-truth or monitor invariant broke during the run",
        scorer=_invariant_score,
    ),
    Objective(
        name="slo-error-budget",
        targets=("resilience", "serve"),
        description="failures exceeded the 1% error budget (burn > 1.0)",
        scorer=_budget_burn_score,
    ),
    Objective(
        name="availability-loss",
        targets=("resilience", "serve", "fleet"),
        description="availability dropped below the 99% SLO floor",
        scorer=_availability_loss_score,
    ),
    Objective(
        name="data-loss",
        targets=("fleet",),
        description="keys lost or read back wrong after rebuild",
        scorer=_data_loss_score,
    ),
    Objective(
        name="under-replication-exposure",
        targets=("fleet",),
        description="key-seconds spent below the replication target",
        scorer=_exposure_score,
    ),
    Objective(
        name="oracle-divergence",
        targets=("oracle",),
        description="checkpoint/restore round-trip changed the fingerprint",
        scorer=_divergence_score,
    ),
)

OBJECTIVES_BY_NAME: Dict[str, Objective] = {o.name: o for o in OBJECTIVES}


def score_evaluation(evaluation: Evaluation) -> Dict[str, float]:
    """All positive objective scores for one evaluation (sorted by name)."""
    scores: Dict[str, float] = {}
    for objective in OBJECTIVES:
        value = objective.score(evaluation)
        if value > 0.0:
            scores[objective.name] = value
    return dict(sorted(scores.items()))


def total_score(scores: Dict[str, float]) -> float:
    return sum(scores.values())


__all__ = [
    "OBJECTIVES",
    "OBJECTIVES_BY_NAME",
    "Objective",
    "score_evaluation",
    "total_score",
]
