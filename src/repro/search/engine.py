"""The search loop: seeded exploration → beam ascent → shrink.

One :class:`SearchEngine` run is a pure function of ``(seed, config)``:

1. **Seeding** — the default genome per target plus seeded random samples.
2. **Ascent** — repeat under the simulated-op budget: keep the top
   ``beam_width`` genomes by objective score, breed children by mutation
   and (same-target) crossover, evaluate the new ones.
3. **Shrink** — the best hits are delta-debugged to minimal repros
   (:mod:`repro.search.shrink`).

All randomness flows through one threaded
:class:`~repro.crypto.prng.XorShift64` — the ``search-unseeded-randomness``
lint rule keeps it that way — and every evaluation is memoized by genome
fingerprint, so duplicates cost nothing and two runs with the same seed
produce byte-identical corpora.

The budget is wall-clock-free: an evaluation charges its *simulated*
operation count (:class:`~repro.sim.stats.SimBudget`, post-paid, so the
final evaluation may overshoot). The ascent stops when the budget is
spent; the shrink phase is bounded by a per-entry evaluation cap instead,
and its ops are charged to the same ledger for accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.prng import XorShift64
from repro.search.adapters import Evaluation, evaluate_scenario
from repro.search.genome import (
    Scenario,
    TARGETS,
    crossover,
    default_scenario,
    mutate,
    random_scenario,
)
from repro.search.objectives import score_evaluation, total_score
from repro.search.shrink import ShrinkResult, shrink
from repro.sim.stats import SearchStats, SimBudget

DEFAULT_BUDGET_OPS = 20_000
DEFAULT_TARGETS: Tuple[str, ...] = ("chaos", "resilience")


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of one search campaign (all deterministic)."""

    budget_ops: int = DEFAULT_BUDGET_OPS
    targets: Tuple[str, ...] = DEFAULT_TARGETS
    seeds_per_target: int = 3
    beam_width: int = 4
    children_per_round: int = 6
    crossover_per_round: int = 2
    shrink: bool = True
    shrink_top: int = 4
    max_shrink_evals: int = 48
    # backstop only: a round whose children all dedup charges nothing, so
    # budget exhaustion alone cannot bound a fully-converged search
    max_rounds: int = 256

    def __post_init__(self) -> None:
        unknown = sorted(set(self.targets) - set(TARGETS))
        if unknown:
            raise ValueError(f"unknown search targets: {', '.join(unknown)}")
        if not self.targets:
            raise ValueError("need at least one search target")


@dataclass(frozen=True)
class ScoredScenario:
    """A genome plus everything its evaluation yielded."""

    scenario: Scenario
    evaluation: Evaluation
    objectives: Dict[str, float]
    total: float

    @property
    def is_hit(self) -> bool:
        return self.total > 0.0

    def sort_key(self) -> Tuple[float, str]:
        # descending score, fingerprint as the deterministic tie-break
        return (-self.total, self.scenario.fingerprint())


@dataclass
class SearchResult:
    """Everything one campaign produced (the corpus serializes this)."""

    seed: int
    config: SearchConfig
    stats: SearchStats
    hits: List[ScoredScenario] = field(default_factory=list)
    minimal: Dict[str, ShrinkResult] = field(default_factory=dict)
    rounds: int = 0
    log: List[str] = field(default_factory=list)

    def primary_objective(self, hit: ScoredScenario) -> str:
        """The objective a hit is shrunk against (highest score wins)."""
        return min(hit.objectives, key=lambda name: (-hit.objectives[name], name))


class SearchEngine:
    """One deterministic campaign (see module docstring)."""

    def __init__(self, seed: int, config: Optional[SearchConfig] = None) -> None:
        self.seed = seed
        self.config = config or SearchConfig()
        self.rng = XorShift64(((seed + 1) << 3) ^ 0x5EA7C4)
        self.budget = SimBudget(self.config.budget_ops)
        self.stats = SearchStats()
        self._memo: Dict[str, ScoredScenario] = {}
        self._log: List[str] = []

    # -- evaluation (memoized, budget-charging) --------------------------------

    def evaluate(self, scenario: Scenario) -> ScoredScenario:
        fingerprint = scenario.fingerprint()
        cached = self._memo.get(fingerprint)
        if cached is not None:
            self.stats.dedup_hits += 1
            return cached
        evaluation = evaluate_scenario(scenario)
        self.budget.charge(evaluation.cost)
        self.stats.evaluations += 1
        self.stats.sim_ops_spent = self.budget.spent_ops
        objectives = score_evaluation(evaluation)
        scored = ScoredScenario(
            scenario=scenario,
            evaluation=evaluation,
            objectives=objectives,
            total=total_score(objectives),
        )
        self._memo[fingerprint] = scored
        return scored

    # -- phases ----------------------------------------------------------------

    def _seed_population(self) -> List[ScoredScenario]:
        population: List[ScoredScenario] = []
        for target in self.config.targets:
            if self.budget.exhausted:
                break
            population.append(self.evaluate(default_scenario(target)))
            for _ in range(self.config.seeds_per_target - 1):
                if self.budget.exhausted:
                    break
                population.append(self.evaluate(random_scenario(target, self.rng)))
        return population

    def _breed(self, beam: List[ScoredScenario]) -> List[Scenario]:
        children: List[Scenario] = []
        parents = [entry.scenario for entry in beam]
        for _ in range(self.config.children_per_round):
            parent = parents[self.rng.next_below(len(parents))]
            children.append(mutate(parent, self.rng))
        for _ in range(self.config.crossover_per_round):
            a = parents[self.rng.next_below(len(parents))]
            mates = [p for p in parents if p.target == a.target]
            b = mates[self.rng.next_below(len(mates))]
            children.append(mutate(crossover(a, b, self.rng), self.rng))
        return children

    def _ascend(self, population: List[ScoredScenario]) -> int:
        rounds = 0
        while not self.budget.exhausted and rounds < self.config.max_rounds:
            rounds += 1
            beam = sorted(population, key=ScoredScenario.sort_key)
            beam = beam[: self.config.beam_width]
            for child in self._breed(beam):
                if self.budget.exhausted:
                    break
                population.append(self.evaluate(child))
        return rounds

    def _shrink_hits(self, result: SearchResult) -> None:
        for hit in result.hits[: self.config.shrink_top]:
            objective = result.primary_objective(hit)
            before = self.stats.evaluations
            shrunk = shrink(
                hit.scenario,
                objective,
                lambda s: self.evaluate(s).evaluation,
                max_evals=self.config.max_shrink_evals,
            )
            self.stats.shrink_evals += self.stats.evaluations - before
            result.minimal[hit.scenario.fingerprint()] = shrunk
            self._log.append(
                f"shrunk {hit.scenario.fingerprint()[:12]} -> "
                f"{shrunk.scenario.fingerprint()[:12]} "
                f"({objective}={shrunk.score:g}, {len(shrunk.steps)} steps)"
            )

    # -- the campaign ----------------------------------------------------------

    def run(self) -> SearchResult:
        population = self._seed_population()
        rounds = self._ascend(population)
        hits = sorted(
            (entry for entry in self._memo.values() if entry.is_hit),
            key=ScoredScenario.sort_key,
        )
        self.stats.corpus_entries = len(hits)
        self._log.append(
            f"searched {self.stats.evaluations} evaluations"
            f" ({self.stats.dedup_hits} deduped) across {rounds} rounds,"
            f" {self.budget.spent_ops}/{self.budget.total_ops} sim-ops,"
            f" {len(hits)} hits"
        )
        result = SearchResult(
            seed=self.seed,
            config=self.config,
            stats=self.stats,
            hits=hits,
            rounds=rounds,
            log=self._log,
        )
        if self.config.shrink and hits:
            self._shrink_hits(result)
        return result


def run_search(seed: int, config: Optional[SearchConfig] = None) -> SearchResult:
    """Run one campaign start to finish (pure function of its arguments)."""
    return SearchEngine(seed, config).run()


__all__ = [
    "DEFAULT_BUDGET_OPS",
    "DEFAULT_TARGETS",
    "ScoredScenario",
    "SearchConfig",
    "SearchEngine",
    "SearchResult",
    "run_search",
]
