"""Delta-debugging shrinker: reduce a hit to a minimal repro genome.

Given a scenario that trips an objective, the shrinker tries a fixed,
deterministic sequence of reductions — zero a fault gene, halve a fault
gene, halve the op count toward the target's floor, reset the workload
mix and config knobs to defaults — and keeps any reduction after which
the *same objective* still scores positive. The sweep restarts from the
smallest accepted genome (greedy first-improvement, ddmin-style) and
stops at a fixed point: a full sweep where no candidate survives.

The shrinker draws no randomness at all — candidate order is a pure
function of the genome — so the same hit shrinks to the same minimal
repro on every run, and shrinking a minimal repro is a no-op.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterator, List, Tuple

from repro.search.adapters import Evaluation
from repro.search.genome import DEFAULT_WORKLOAD, MIN_OPS, Scenario, default_config
from repro.search.objectives import OBJECTIVES_BY_NAME

DEFAULT_MAX_EVALS = 64


@dataclass(frozen=True)
class ShrinkResult:
    """A minimal repro plus the trail that led there."""

    scenario: Scenario
    evaluation: Evaluation
    objective: str
    score: float
    evals_used: int
    steps: Tuple[str, ...] = ()

    @property
    def at_fixed_point(self) -> bool:
        """True when the final sweep completed without an accepted step."""
        return not self.steps or self.steps[-1].startswith("fixed-point")


def _candidates(scenario: Scenario) -> Iterator[Tuple[str, Scenario]]:
    """Deterministic reduction order: boldest cuts first."""
    # 1. drop whole fault classes
    for gene in sorted(scenario.faults):
        if scenario.faults.get(gene, 0) > 0:
            faults = dict(scenario.faults)
            faults[gene] = 0
            yield f"zero:{gene}", dataclasses.replace(scenario, faults=faults)
    # 2. halve surviving fault classes
    for gene in sorted(scenario.faults):
        if scenario.faults.get(gene, 0) > 1:
            faults = dict(scenario.faults)
            faults[gene] = faults[gene] // 2
            yield f"halve:{gene}", dataclasses.replace(scenario, faults=faults)
    # 3. shorten the run toward the target's floor
    floor = MIN_OPS[scenario.target]
    if scenario.ops > floor:
        shorter = max(floor, scenario.ops // 2)
        yield f"ops:{shorter}", dataclasses.replace(scenario, ops=shorter)
    # 4. reset the workload dimension
    if scenario.workload != DEFAULT_WORKLOAD:
        yield "workload:default", dataclasses.replace(
            scenario, workload=dict(DEFAULT_WORKLOAD)
        )
    # 5. reset config knobs one at a time
    defaults = default_config(scenario.target)
    for name in sorted(scenario.config):
        if name in defaults and scenario.config[name] != defaults[name]:
            config = dict(scenario.config)
            config[name] = defaults[name]
            yield f"config:{name}", dataclasses.replace(scenario, config=config)


def shrink(
    scenario: Scenario,
    objective_name: str,
    evaluate: Callable[[Scenario], Evaluation],
    max_evals: int = DEFAULT_MAX_EVALS,
) -> ShrinkResult:
    """Reduce ``scenario`` while ``objective_name`` keeps scoring positive.

    ``evaluate`` is the (budget-charging, memoizing) evaluation function the
    engine threads in; the shrinker itself is randomness-free. Raises
    ``KeyError`` for an unknown objective and ``ValueError`` if the starting
    scenario does not trip it.
    """
    objective = OBJECTIVES_BY_NAME[objective_name]
    current = scenario
    evaluation = evaluate(current)
    score = objective.score(evaluation)
    if score <= 0.0:
        raise ValueError(
            f"cannot shrink: objective {objective_name!r} does not fire on "
            f"{scenario.fingerprint()[:12]}"
        )
    evals = 1
    steps: List[str] = []

    progressed = True
    while progressed and evals < max_evals:
        progressed = False
        for label, candidate in _candidates(current):
            if evals >= max_evals:
                steps.append("eval-cap")
                break
            if candidate.fingerprint() == current.fingerprint():
                continue
            candidate_eval = evaluate(candidate)
            evals += 1
            candidate_score = objective.score(candidate_eval)
            if candidate_score > 0.0:
                current = candidate
                evaluation = candidate_eval
                score = candidate_score
                steps.append(label)
                progressed = True
                break  # restart the sweep from the smaller genome
        else:
            steps.append("fixed-point")
    if steps and steps[-1] not in ("fixed-point", "eval-cap") and evals >= max_evals:
        steps.append("eval-cap")

    return ShrinkResult(
        scenario=current,
        evaluation=evaluation,
        objective=objective_name,
        score=score,
        evals_used=evals,
        steps=tuple(steps),
    )


__all__ = ["DEFAULT_MAX_EVALS", "ShrinkResult", "shrink"]
