"""repro.search — adversarial scenario search over fault × workload × config.

The labs answer "does the stack survive *this* plan?"; this package asks
the adversarial question: *which* plan hurts the most? A seeded,
deterministic search walks the space of :class:`~repro.search.genome.Scenario`
genomes — fault-plan gene counts, YCSB mix weights and Zipf skew, stack
config knobs — evaluating each against a real campaign (chaos runner,
resilience/fleet/serve lab arm, crash-oracle round-trip) and scoring the
outcome with pluggable :mod:`~repro.search.objectives`. Hits are
delta-debugged to minimal repro genomes and persisted as a replayable,
content-fingerprinted ``search-corpus/v1`` file (``python -m repro search``).

Everything is a pure function of the campaign seed: one threaded
:class:`~repro.crypto.prng.XorShift64` drives every mutation and sample
(the ``search-unseeded-randomness`` lint rule enforces this), evaluations
are memoized by genome fingerprint, and the budget counts *simulated*
operations, never wall-clock — so two identical invocations produce
byte-identical corpora.
"""

from repro.search.adapters import Evaluation, evaluate_scenario
from repro.search.corpus import (
    ReplayReport,
    build_corpus,
    corpus_fingerprint,
    load_corpus,
    replay_corpus,
    replay_path,
    save_corpus,
)
from repro.search.engine import (
    ScoredScenario,
    SearchConfig,
    SearchEngine,
    SearchResult,
    run_search,
)
from repro.search.genome import (
    Scenario,
    TARGETS,
    crossover,
    default_scenario,
    mutate,
    random_scenario,
)
from repro.search.objectives import OBJECTIVES, Objective, score_evaluation
from repro.search.shrink import ShrinkResult, shrink

__all__ = [
    "Evaluation",
    "OBJECTIVES",
    "Objective",
    "ReplayReport",
    "Scenario",
    "ScoredScenario",
    "SearchConfig",
    "SearchEngine",
    "SearchResult",
    "ShrinkResult",
    "TARGETS",
    "build_corpus",
    "corpus_fingerprint",
    "crossover",
    "default_scenario",
    "evaluate_scenario",
    "load_corpus",
    "mutate",
    "random_scenario",
    "replay_corpus",
    "replay_path",
    "run_search",
    "save_corpus",
    "score_evaluation",
    "shrink",
]
