"""Campaign adapters: evaluate one scenario genome against a real stack.

Each ``eval_*`` function is a pure function of its :class:`Scenario` — it
builds the corresponding harness (chaos runner, resilience/fleet/serve lab
arm, crash-oracle round-trip), runs it to completion, and condenses the
outcome into an :class:`Evaluation`: a flat ``signals`` dict the objectives
score, a simulated-operation ``cost`` the budget charges, and a sha256
``run_fingerprint`` that replay compares byte-for-byte.

The genome's workload dimension lands where each stack can express it: the
YCSB mix weights set the write fraction of the chaos/resilience streams
(via :func:`repro.workloads.ycsb.mix_write_fraction`); the Zipf skew rides
along in the genome for standalone ``ycsb`` runs and replay identity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.faults.chaos import ChaosReport, ChaosRunner
from repro.faults.plan import FaultPlanConfig
from repro.fleet.lab import run_fleet_arm
from repro.recovery.checkpoint import restore_chaos_runner, snapshot_chaos_runner
from repro.recovery.monitors import MonitorSuite
from repro.resilience.lab import LabConfig, run_resilience_arm
from repro.search.genome import Scenario
from repro.serve.lab import run_serve_lab
from repro.workloads.ycsb import DEFAULT_MIX, mix_write_fraction

# SLO the damage objectives are judged against (matches the labs' 99%
# availability objective): the error budget is the 1% of requests allowed
# to fail, and "burn" is failures as a multiple of that budget
SLO_AVAILABILITY = 0.99


@dataclass(frozen=True)
class Evaluation:
    """What running one scenario produced, reduced to scoreable primitives."""

    target: str
    cost: int  # simulated operations charged against the search budget
    signals: Dict[str, float] = field(default_factory=dict)
    run_fingerprint: str = ""

    def signal(self, name: str) -> float:
        return float(self.signals.get(name, 0.0))


def _digest(*parts: str) -> str:
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def _genome_mix(scenario: Scenario) -> Dict[str, float]:
    return {
        op: float(scenario.workload.get(op, weight))
        for op, weight in sorted(DEFAULT_MIX.items())
    }


def _error_budget_burn(failures: float, requests: float) -> float:
    allowed = max(1.0, (1.0 - SLO_AVAILABILITY) * requests)
    return failures / allowed


def _chaos_runner(scenario: Scenario) -> ChaosRunner:
    return ChaosRunner(
        str(scenario.workload.get("kind", "ycsb")),
        mix_write_fraction(_genome_mix(scenario)),
        seed=scenario.seed,
        ops=scenario.ops,
        plan_config=scenario.plan_config(),
    )


def _chaos_signals(report: ChaosReport, suite: MonitorSuite) -> Dict[str, float]:
    rel = report.reliability
    signals = {
        "invariant_violations": float(report.invariant_violations),
        "monitor_violations": float(len(suite.records)),
        "faults_injected": float(rel.get("faults_injected", 0)),
        "faults_fatal": float(rel.get("faults_fatal", 0)),
        "integrity_violations": float(rel.get("integrity_violations", 0)),
        "pages_lost": float(sum(report.nvme_statuses.values())),
    }
    for monitor, count in sorted(suite.violation_counts().items()):
        signals[f"monitor.{monitor}"] = float(count)
    return signals


def eval_chaos(scenario: Scenario) -> Evaluation:
    """Chaos target: data survival under the genome's fault plan.

    Monitors are armed in collect mode, so monitor violations become
    signals while the run keeps the fingerprint of an unarmed one.
    """
    runner = _chaos_runner(scenario)
    suite = MonitorSuite(raise_on_violation=False)
    runner.arm_monitors(suite)
    report = runner.run()
    return Evaluation(
        target=scenario.target,
        cost=scenario.ops,
        signals=_chaos_signals(report, suite),
        run_fingerprint=_digest(report.fingerprint()),
    )


def eval_oracle(scenario: Scenario) -> Evaluation:
    """Oracle target: does a checkpoint/restore round-trip diverge?

    Runs the scenario straight through, then again with a snapshot/restore
    cut at ``config.cut_fraction`` of the run. Any fingerprint difference
    is a determinism bug in the recovery path — the strongest signal the
    search can find. Costs two full runs.
    """
    full = _chaos_runner(scenario)
    suite = MonitorSuite(raise_on_violation=False)
    full.arm_monitors(suite)
    full_report = full.run()

    cut_fraction = float(scenario.config.get("cut_fraction", 0.5))
    cut_at = max(1, min(scenario.ops - 1, int(scenario.ops * cut_fraction)))
    first = _chaos_runner(scenario)
    first.run_until(cut_at)
    snapshot = snapshot_chaos_runner(first)
    resumed = restore_chaos_runner(snapshot, plan_config=scenario.plan_config())
    resumed.run_until(scenario.ops)
    resumed_report = resumed.finalize()

    diverged = full_report.fingerprint() != resumed_report.fingerprint()
    signals = _chaos_signals(full_report, suite)
    signals["divergence"] = 1.0 if diverged else 0.0
    # the resumed run has no monitors armed, so drop the monitor-sourced
    # signals from the comparison surface and fingerprint both reports
    return Evaluation(
        target=scenario.target,
        cost=2 * scenario.ops,
        signals=signals,
        run_fingerprint=_digest(
            full_report.fingerprint(), resumed_report.fingerprint()
        ),
    )


def eval_resilience(scenario: Scenario) -> Evaluation:
    """Resilience target: SLO damage to a single lab arm.

    ``config.policies`` selects the arm; the policies-off arm is the PR 1
    world and the default search prey — the genome hunts the fault mix
    that burns the most error budget.
    """
    cfg = LabConfig(
        channels=int(scenario.config.get("channels", 4)),
        ops=scenario.ops,
        working_set=int(scenario.config.get("working_set", 128)),
        write_fraction=mix_write_fraction(_genome_mix(scenario)),
    )
    report = run_resilience_arm(
        scenario.seed,
        scenario.ops,
        policies=bool(scenario.config.get("policies", False)),
        config=cfg,
        plan_config=scenario.plan_config(),
    )
    signals = {
        "availability": report.availability,
        "failures": float(report.failures),
        "requests": float(report.requests),
        "error_budget_burn": _error_budget_burn(report.failures, report.requests),
        "p99_read_s": report.p99_read_s,
    }
    return Evaluation(
        target=scenario.target,
        cost=scenario.ops,
        signals=signals,
        run_fingerprint=_digest(*report.fingerprint_lines()),
    )


def eval_fleet(scenario: Scenario) -> Evaluation:
    """Fleet target: durability damage (lost keys, replication exposure)."""
    devices = int(scenario.config.get("devices", 6))
    report = run_fleet_arm(
        scenario.seed,
        scenario.ops,
        devices=devices,
        replication=min(devices, int(scenario.config.get("replication", 1))),
        hedge=bool(scenario.config.get("hedge", False)),
        working_set=min(64, scenario.ops),
        device_kills=int(scenario.config.get("device_kills", 1)),
        die_quarantines=int(scenario.faults.get("uncorrectable_pages", 2)),
    )
    signals = {
        "availability": report.availability,
        "error_budget_burn": _error_budget_burn(
            report.requests - round(report.availability * report.requests),
            report.requests,
        ),
        "keys_lost": float(report.keys_lost),
        "lost": float(report.lost),
        "corrupt": float(report.corrupt),
        "under_replicated_key_seconds": report.under_replicated_key_seconds,
        "devices_lost": float(report.devices_lost),
    }
    return Evaluation(
        target=scenario.target,
        cost=scenario.ops,
        signals=signals,
        run_fingerprint=report.fingerprint(),
    )


def eval_serve(scenario: Scenario) -> Evaluation:
    """Serve target: SLO damage to the policies-off arm of the serve lab.

    The lab always runs both arms, so the evaluation costs 2x the genome's
    ops; the attested arm's availability is kept as a secondary signal.
    """
    report = run_serve_lab(
        seed=scenario.seed,
        tenants=int(scenario.config.get("tenants", 50)),
        requests=scenario.ops,
        process=str(scenario.config.get("process", "poisson")),
        chaos=True,
        plan_config=scenario.plan_config(),
    )
    baseline = report.baseline
    signals = {
        "availability": baseline.availability,
        "failures": float(baseline.failures),
        "error_budget_burn": _error_budget_burn(
            baseline.failures, max(1, baseline.requests)
        ),
        "attested_availability": report.attested.availability,
        "p99_read_s": baseline.p99_read_s,
    }
    return Evaluation(
        target=scenario.target,
        cost=2 * scenario.ops,
        signals=signals,
        run_fingerprint=_digest(report.fingerprint()),
    )


ADAPTERS: Dict[str, Callable[[Scenario], Evaluation]] = {
    "chaos": eval_chaos,
    "oracle": eval_oracle,
    "resilience": eval_resilience,
    "fleet": eval_fleet,
    "serve": eval_serve,
}


def evaluate_scenario(scenario: Scenario) -> Evaluation:
    """Dispatch a genome to its target's adapter (pure; no budget here)."""
    return ADAPTERS[scenario.target](scenario)


__all__ = [
    "ADAPTERS",
    "Evaluation",
    "SLO_AVAILABILITY",
    "eval_chaos",
    "eval_fleet",
    "eval_oracle",
    "eval_resilience",
    "eval_serve",
    "evaluate_scenario",
]
