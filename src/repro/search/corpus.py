"""Corpus persistence: versioned, content-fingerprinted, replayable.

A campaign's hits are written as a ``search-corpus/v1`` JSON document.
The document's ``fingerprint`` is the sha256 of its canonical body (sorted
keys, compact separators, the fingerprint field itself excluded), so two
identical campaigns produce byte-identical files and any edit is visible.

``replay`` re-evaluates every entry's minimal genome (falling back to the
original when a hit was not shrunk) and demands two things: the re-run's
``run_fingerprint`` matches byte-for-byte, and the recorded objective
still scores positive. That is the whole point of the corpus — each entry
is an executable, self-verifying repro.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.search.adapters import evaluate_scenario
from repro.search.engine import SearchResult
from repro.search.genome import Scenario
from repro.search.objectives import OBJECTIVES_BY_NAME, score_evaluation

SCHEMA = "search-corpus/v1"


def _canonical_dumps(document: Dict[str, object]) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def corpus_fingerprint(document: Dict[str, object]) -> str:
    """sha256 over the canonical body, ``fingerprint`` field excluded."""
    body = {k: v for k, v in document.items() if k != "fingerprint"}
    return hashlib.sha256(_canonical_dumps(body).encode("utf-8")).hexdigest()


def build_corpus(result: SearchResult) -> Dict[str, object]:
    """Serialize a campaign into a self-fingerprinted v1 document."""
    entries: List[Dict[str, object]] = []
    for hit in result.hits:
        fingerprint = hit.scenario.fingerprint()
        entry: Dict[str, object] = {
            "fingerprint": fingerprint,
            "scenario": hit.scenario.to_dict(),
            "objectives": dict(sorted(hit.objectives.items())),
            "signals": dict(sorted(hit.evaluation.signals.items())),
            "run_fingerprint": hit.evaluation.run_fingerprint,
            "minimal": None,
        }
        shrunk = result.minimal.get(fingerprint)
        if shrunk is not None:
            entry["minimal"] = {
                "fingerprint": shrunk.scenario.fingerprint(),
                "scenario": shrunk.scenario.to_dict(),
                "objective": shrunk.objective,
                "score": shrunk.score,
                "signals": dict(sorted(shrunk.evaluation.signals.items())),
                "run_fingerprint": shrunk.evaluation.run_fingerprint,
                "steps": list(shrunk.steps),
            }
        entries.append(entry)
    document: Dict[str, object] = {
        "schema": SCHEMA,
        "seed": result.seed,
        "budget_ops": result.config.budget_ops,
        "targets": list(result.config.targets),
        "rounds": result.rounds,
        "stats": result.stats.as_dict(),
        "entries": entries,
    }
    document["fingerprint"] = corpus_fingerprint(document)
    return document


def save_corpus(document: Dict[str, object], path: Union[str, Path]) -> Path:
    """Write the document canonically (byte-identical for equal content)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(document, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return out


def load_corpus(path: Union[str, Path]) -> Dict[str, object]:
    """Read and validate a v1 document (schema + content fingerprint)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"not a {SCHEMA} document (schema={schema!r})")
    expected = corpus_fingerprint(document)
    if document.get("fingerprint") != expected:
        raise ValueError(
            f"corpus fingerprint mismatch: file says "
            f"{document.get('fingerprint')!r}, content hashes to {expected!r}"
        )
    return document


@dataclass
class ReplayOutcome:
    """One entry's replay verdict."""

    fingerprint: str
    objective: str
    reproduced: bool
    fingerprint_match: bool
    detail: str

    @property
    def ok(self) -> bool:
        return self.reproduced and self.fingerprint_match


@dataclass
class ReplayReport:
    outcomes: List[ReplayOutcome] = field(default_factory=list)

    @property
    def all_reproduced(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    def format(self) -> str:
        lines = [f"replaying {len(self.outcomes)} corpus entries:"]
        for outcome in self.outcomes:
            verdict = "REPRODUCED" if outcome.ok else "FAILED"
            lines.append(
                f"  {outcome.fingerprint[:12]} [{outcome.objective}] "
                f"{verdict}: {outcome.detail}"
            )
        return "\n".join(lines)


def _entry_repro(entry: Dict[str, object]) -> Dict[str, object]:
    minimal = entry.get("minimal")
    if isinstance(minimal, dict):
        return minimal
    return entry


def replay_corpus(document: Dict[str, object]) -> ReplayReport:
    """Re-run every entry's repro genome and verify it still bites."""
    report = ReplayReport()
    for entry in document.get("entries", []):  # type: ignore[union-attr]
        repro = _entry_repro(entry)
        scenario = Scenario.from_dict(repro["scenario"])  # type: ignore[arg-type]
        evaluation = evaluate_scenario(scenario)
        fingerprint_match = (
            evaluation.run_fingerprint == repro.get("run_fingerprint")
        )
        if "objective" in repro:
            objective_name = str(repro["objective"])
            score = OBJECTIVES_BY_NAME[objective_name].score(evaluation)
            reproduced = score > 0.0
        else:
            recorded = repro.get("objectives", {})
            scores = score_evaluation(evaluation)
            objective_name = ",".join(sorted(recorded))  # type: ignore[arg-type]
            reproduced = all(name in scores for name in recorded)  # type: ignore[union-attr]
            score = sum(scores.values())
        detail = (
            f"score={score:g}, run fingerprint "
            + ("matches" if fingerprint_match else "DIVERGED")
        )
        report.outcomes.append(
            ReplayOutcome(
                fingerprint=str(repro.get("fingerprint", "")),
                objective=objective_name,
                reproduced=reproduced,
                fingerprint_match=fingerprint_match,
                detail=detail,
            )
        )
    return report


def replay_path(path: Union[str, Path]) -> ReplayReport:
    return replay_corpus(load_corpus(path))


__all__ = [
    "ReplayOutcome",
    "ReplayReport",
    "SCHEMA",
    "build_corpus",
    "corpus_fingerprint",
    "load_corpus",
    "replay_corpus",
    "replay_path",
    "save_corpus",
]
