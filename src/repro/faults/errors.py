"""Exceptions belonging to the fault-injection subsystem."""

from __future__ import annotations


class PowerLossError(Exception):
    """The simulated SSD lost power mid-operation.

    Raised by an armed :class:`~repro.faults.injector.FaultInjector` hook;
    the FTL itself never raises this — it only leaves whatever partial flash
    state the cut produced, which
    :meth:`~repro.ftl.ftl.Ftl.recover_from_power_loss` must repair.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"power lost at {point}")
        self.point = point
