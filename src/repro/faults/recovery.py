"""Recovery policies layered on top of the protection machinery.

The flash-level pieces (escalating read retry, remap-on-uncorrectable,
power-loss rebuild) live with the FTL so the normal read/write path can use
them; this module adds the piece that is IceClave-specific: *blast-radius
containment* for memory-integrity violations. A MAC mismatch or Merkle
failure in one tenant's protected DRAM aborts that tenant's enclave via
ThrowOutTEE semantics (§4.5) — the SSD itself, and every other tenant, keep
running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.exceptions import IntegrityError
from repro.core.mee import FunctionalMee
from repro.core.tee import TeeMessage
from repro.sim.stats import ReliabilityStats


@dataclass
class TenantEnclave:
    """One tenant's in-storage enclave with functionally protected DRAM."""

    tee_id: int
    mee: FunctionalMee
    aes_key: bytes
    mac_key: bytes
    pages: int
    generation: int = 0  # bumped every abort/restart
    aborted: bool = False
    abort_message: Optional[TeeMessage] = None
    lines_written: List[Tuple[int, int]] = field(default_factory=list)
    # committed-write journal: the last plaintext accepted per line. This is
    # the tenant's pending-write epoch; restart replays it through the fresh
    # MEE so a post-restart read of the last committed line round-trips.
    # (In hardware this journal is the encrypted write-ahead log in flash;
    # functionally the plaintext stands in for log-replay-then-decrypt.)
    journal: Dict[Tuple[int, int], bytes] = field(default_factory=dict)


class EnclaveIntegrityGuard:
    """Per-tenant integrity-violation handling.

    Reads go through the tenant's :class:`FunctionalMee`; a detected
    violation (tamper or replay) aborts *only* that tenant — the guard
    records the ThrowOutTEE message, provisions a fresh enclave generation,
    and leaves every other tenant untouched. This is the recovery half of
    the paper's integrity claim: detection is the MEE's job, containment is
    ours.
    """

    def __init__(self, stats: Optional[ReliabilityStats] = None) -> None:
        self.tenants: Dict[int, TenantEnclave] = {}
        self.stats = stats or ReliabilityStats()
        self.abort_log: List[TeeMessage] = []

    def register(
        self, tee_id: int, pages: int, aes_key: bytes, mac_key: bytes
    ) -> TenantEnclave:
        if tee_id in self.tenants:
            raise ValueError(f"tenant {tee_id} already registered")
        tenant = TenantEnclave(
            tee_id=tee_id,
            mee=FunctionalMee(pages, aes_key, mac_key),
            aes_key=aes_key,
            mac_key=mac_key,
            pages=pages,
        )
        self.tenants[tee_id] = tenant
        return tenant

    def write(self, tee_id: int, page: int, line: int, plaintext: bytes) -> None:
        tenant = self.tenants[tee_id]
        tenant.mee.write_line(page, line, plaintext)
        if (page, line) not in tenant.lines_written:
            tenant.lines_written.append((page, line))
        tenant.journal[(page, line)] = bytes(plaintext)

    def read(self, tee_id: int, page: int, line: int) -> Optional[bytes]:
        """Verified read; returns None when the violation aborted the tenant."""
        tenant = self.tenants[tee_id]
        try:
            return tenant.mee.read_line(page, line)
        except IntegrityError as exc:
            self._abort(tenant, str(exc))
            return None

    def sweep(self) -> List[TeeMessage]:
        """Re-verify every tenant's resident lines; abort the violated ones.

        Returns the abort messages issued by this sweep. Tenants whose
        lines all verify are untouched — corruption in one tenant's DRAM
        must never take a neighbour down.
        """
        aborts: List[TeeMessage] = []
        for tenant in self.tenants.values():
            if tenant.aborted:
                continue
            for page, line in tenant.lines_written:
                try:
                    tenant.mee.read_line(page, line)
                except IntegrityError as exc:
                    self._abort(tenant, str(exc))
                    aborts.append(tenant.abort_message)
                    break
        return aborts

    def restart(self, tee_id: int, replay: bool = True) -> TenantEnclave:
        """Provision a fresh enclave generation after an abort.

        With ``replay`` (the default) the journaled write epoch is replayed
        through the fresh MEE in original write order, so every line the
        tenant had committed before the abort reads back verbatim — the
        tamper is discarded with the old MEE state, not the tenant's data.
        ``replay=False`` gives the old scorched-earth restart (fresh, empty
        enclave) for tenants that prefer to re-provision from scratch.
        """
        tenant = self.tenants[tee_id]
        if not tenant.aborted:
            raise ValueError(f"tenant {tee_id} is not aborted")
        tenant.mee = FunctionalMee(tenant.pages, tenant.aes_key, tenant.mac_key)
        tenant.generation += 1
        tenant.aborted = False
        tenant.abort_message = None
        if replay:
            # lines_written preserves first-write order; the journal holds the
            # last committed payload per line (last-write-wins epoch). The
            # batched commit path recomputes each dirty tree path once for
            # the whole epoch — byte-identical to per-line replay.
            tenant.mee.write_lines(
                [
                    (page, line, tenant.journal[(page, line)])
                    for page, line in tenant.lines_written
                ]
            )
        else:
            tenant.lines_written = []
            tenant.journal = {}
        return tenant

    def live_tenants(self) -> List[int]:
        return sorted(t for t, e in self.tenants.items() if not e.aborted)

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Per-tenant enclave state plus the abort log.

        Keys are *not* serialized (they are registration inputs); restoring
        into a guard whose tenants were registered with different keys makes
        every MEE verify fail, by design. The shared ``stats`` object is
        owned — and snapshotted — by whoever constructed the guard.
        """
        return {
            "tenants": [
                (
                    tee_id,
                    {
                        "generation": t.generation,
                        "aborted": t.aborted,
                        "abort_reason": (
                            t.abort_message.reason if t.abort_message is not None else None
                        ),
                        "lines_written": list(t.lines_written),
                        "journal": [(key, value) for key, value in t.journal.items()],
                        "mee": t.mee.snapshot_state(),
                    },
                )
                for tee_id, t in sorted(self.tenants.items())
            ],
            "abort_log": [(m.tee_id, m.reason) for m in self.abort_log],
        }

    def restore_state(self, state: dict) -> None:
        snapshot_ids = [tee_id for tee_id, _ in state["tenants"]]
        if snapshot_ids != sorted(self.tenants):
            raise ValueError(
                f"snapshot names tenants {snapshot_ids}, guard has {sorted(self.tenants)}"
            )
        for tee_id, tstate in state["tenants"]:
            tenant = self.tenants[tee_id]
            tenant.generation = tstate["generation"]
            tenant.aborted = tstate["aborted"]
            tenant.abort_message = (
                TeeMessage(tee_id=tee_id, reason=tstate["abort_reason"])
                if tstate["abort_reason"] is not None
                else None
            )
            tenant.lines_written = [(page, line) for page, line in tstate["lines_written"]]
            tenant.journal = {
                (page, line): value for (page, line), value in tstate["journal"]
            }
            tenant.mee.restore_state(tstate["mee"])
        self.abort_log = [
            TeeMessage(tee_id=tee_id, reason=reason) for tee_id, reason in state["abort_log"]
        ]

    def _abort(self, tenant: TenantEnclave, reason: str) -> None:
        tenant.aborted = True
        tenant.abort_message = TeeMessage(tee_id=tenant.tee_id, reason=reason)
        self.abort_log.append(tenant.abort_message)
        self.stats.integrity_violations += 1
        self.stats.tenant_aborts += 1
        # the SSD (and every other tenant) survives: containment worked
        self.stats.faults_recovered += 1
