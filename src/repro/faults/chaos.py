"""Chaos harness: drive a workload-shaped I/O stream through a faulty SSD.

``python -m repro chaos <workload> --seed N`` builds a small functional SSD
(data bytes actually stored, ECC decoding on every read), shapes a
read/write stream after the workload's measured write ratio, and executes a
seed-deterministic :class:`~repro.faults.plan.FaultPlan` against it. The
run checks its own ground truth as it goes: every surviving logical page
must read back exactly what was last written, across read retries, scrub
remaps, die quarantines and power-loss rebuilds.

Everything is a pure function of (workload profile, seed, op count), so the
same invocation twice produces byte-identical event logs and stats — which
is how the CLI proves determinism on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.prng import XorShift64
from repro.faults.errors import PowerLossError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultPlanConfig
from repro.faults.recovery import EnclaveIntegrityGuard
from repro.flash.chip import DieFailureError, FlashChip, FlashProgramError
from repro.flash.ecc import EccModel, ReadRetryPolicy
from repro.flash.geometry import FlashGeometry
from repro.ftl.ftl import Ftl, UncorrectableReadError
from repro.ftl.mapping import AccessDeniedError
from repro.host.nvme import status_for_exception
from repro.sim.stats import ReliabilityStats

# Small enough to churn through GC in a few thousand ops, big enough to
# survive losing one of its four dies.
CHAOS_GEOMETRY = FlashGeometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=12,
    pages_per_block=16,
    page_bytes=4096,
)
WORKING_SET = 256
TENANT_PAGES = 16
TENANT_LINES = 8
# chaos streams need enough writes to exercise GC even for read-heavy
# workloads; the workload's measured ratio raises this floor, never lowers it
MIN_WRITE_FRACTION = 0.35


@dataclass
class ChaosReport:
    """Deterministic outcome of one chaos run."""

    workload: str
    seed: int
    ops: int
    reliability: Dict[str, float] = field(default_factory=dict)
    plan_summary: Dict[str, int] = field(default_factory=dict)
    nvme_statuses: Dict[str, int] = field(default_factory=dict)
    ftl_counters: Dict[str, int] = field(default_factory=dict)
    invariant_violations: int = 0
    event_log: List[str] = field(default_factory=list)

    def fingerprint(self) -> str:
        """Canonical serialization; equal fingerprints ⇔ identical runs."""
        parts = [f"workload={self.workload}", f"seed={self.seed}", f"ops={self.ops}"]
        for name, value in sorted(self.reliability.items()):
            parts.append(f"rel.{name}={value!r}")
        for name, value in sorted(self.plan_summary.items()):
            parts.append(f"plan.{name}={value}")
        for name, value in sorted(self.nvme_statuses.items()):
            parts.append(f"nvme.{name}={value}")
        for name, value in sorted(self.ftl_counters.items()):
            parts.append(f"ftl.{name}={value}")
        parts.append(f"invariant_violations={self.invariant_violations}")
        parts.extend(self.event_log)
        return "\n".join(parts)

    def format(self) -> str:
        rel = self.reliability
        lines = [
            f"chaos {self.workload}: {self.ops} ops, seed {self.seed}",
            "  fault plan      : "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.plan_summary.items())),
            f"  faults injected : {int(rel.get('faults_injected', 0))}",
            f"  bits corrected  : {int(rel.get('errors_corrected', 0))}",
            f"  faults recovered: {int(rel.get('faults_recovered', 0))}"
            f"  (retries={int(rel.get('read_retries', 0))},"
            f" remaps={int(rel.get('remaps', 0))},"
            f" power-loss rebuilds={int(rel.get('power_loss_recoveries', 0))},"
            f" tenant aborts={int(rel.get('tenant_aborts', 0))})",
            f"  faults fatal    : {int(rel.get('faults_fatal', 0))}"
            f"  (dies failed={int(rel.get('dies_failed', 0))})",
            f"  integrity hits  : {int(rel.get('integrity_violations', 0))}",
            f"  added latency   : {rel.get('added_latency_s', 0.0) * 1e3:.3f} ms",
            "  nvme statuses   : "
            + (
                ", ".join(f"{k}={v}" for k, v in sorted(self.nvme_statuses.items()))
                or "none"
            ),
            f"  invariant breaks: {self.invariant_violations}",
            f"  events          : {len(self.event_log)} logged",
        ]
        return "\n".join(lines)

    # NOTE: the platform-layer view of a chaos run lives in
    # `repro.platform.metrics.RunResult.from_chaos`; building it here would
    # invert the faults -> platform layering.


class ChaosRunner:
    """One deterministic chaos execution (see module docstring)."""

    def __init__(
        self,
        workload: str,
        write_ratio: float,
        seed: int = 42,
        ops: int = 3000,
        plan_config: Optional[FaultPlanConfig] = None,
    ) -> None:
        if ops < 10:
            raise ValueError("chaos needs at least 10 operations")
        self.workload = workload
        self.seed = seed
        self.ops = ops
        self.write_fraction = max(MIN_WRITE_FRACTION, min(0.9, write_ratio))
        self.rng = XorShift64((seed << 1) ^ 0xC4A05)
        self.stats = ReliabilityStats()
        self.chip = FlashChip(CHAOS_GEOMETRY, store_data=True)
        self.ftl = Ftl(CHAOS_GEOMETRY, chip=self.chip, overprovision=0.25)
        self.ftl.attach_reliability(
            ecc=EccModel(seed=(seed ^ 0xECC) or 1),
            retry_policy=ReadRetryPolicy(),
            reliability=self.stats,
        )
        self.guard = EnclaveIntegrityGuard(stats=self.stats)
        for tee_id in (1, 2):
            self.guard.register(
                tee_id,
                TENANT_PAGES,
                aes_key=bytes([tee_id]) * 16,
                mac_key=bytes([0x80 + tee_id]) * 16,
            )
        self.plan = FaultPlan.generate(seed, ops, plan_config or FaultPlanConfig())
        self.injector = FaultInjector(self.plan, self.ftl, self.guard, self.stats)
        self.expected: Dict[int, bytes] = {}
        self.event_log: List[str] = []
        self.nvme_statuses: Dict[str, int] = {}
        self.invariant_violations = 0
        # stepping cursor: run() == prepare() + ops * step() + finalize(),
        # so a checkpoint between steps resumes with identical RNG draws
        self._prepared = False
        self._next_op = 0
        self._tag = 0
        self.monitors = None  # repro: allow[recovery-unserialized-state] -- MonitorSuite is re-armed via arm_monitors after restore, never serialized

    # -- pieces ----------------------------------------------------------------

    def _payload(self, lpa: int, tag: int) -> bytes:
        return f"{lpa}:{tag}".encode()

    def _seed_tenant(self, tee_id: int) -> None:
        tenant = self.guard.tenants[tee_id]
        for i in range(TENANT_LINES):
            page, line = i % TENANT_PAGES, i
            self.guard.write(
                tee_id, page, line,
                f"t{tee_id}g{tenant.generation}p{page}l{line}".encode(),
            )

    def _write(self, lpa: int, tag: int) -> None:
        payload = self._payload(lpa, tag)
        try:
            self.ftl.write(lpa, payload)
        except PowerLossError as exc:
            # the host program committed (OOB and all) before GC started,
            # so the new data must survive the rebuild
            self.expected[lpa] = payload
            self._power_cut(f"mid-gc ({exc.point})")
            return
        self.expected[lpa] = payload

    def _read(self, op: int, lpa: int) -> None:
        try:
            cost = self.ftl.read(lpa)
        except UncorrectableReadError as exc:
            status = status_for_exception(exc)
            self.nvme_statuses[status.name] = self.nvme_statuses.get(status.name, 0) + 1
            self.event_log.append(f"op={op} lost lpa={lpa} nvme={status.name}")
            self.expected.pop(lpa, None)
            return
        got = self.chip.read(cost.ppa)
        if got != self.expected[lpa]:
            self.invariant_violations += 1
            self.event_log.append(f"op={op} MISMATCH lpa={lpa}")

    def _power_cut(self, label: str) -> None:
        report = self.ftl.recover_from_power_loss()
        self.event_log.append(
            f"power-loss[{label}]: recovered={report.mappings_recovered}"
            f" stale_discarded={report.stale_copies_discarded}"
            f" scanned={report.pages_scanned}"
        )
        self._verify_expected("post-power-loss")

    def _verify_expected(self, label: str) -> None:
        bad = 0
        for lpa, payload in sorted(self.expected.items()):
            try:
                ppa = self.ftl.translate(lpa)
                if self.chip.read(ppa) != payload:
                    bad += 1
            except (KeyError, AccessDeniedError, FlashProgramError, DieFailureError):
                # the mapping or physical page did not survive the fault
                bad += 1
        if bad:
            self.invariant_violations += bad
            self.event_log.append(f"{label}: {bad} lost/corrupt mappings")

    def _handle_applied(self, op: int, applied) -> None:
        for fault in applied:
            self.event_log.append(fault.describe())
            if fault.action == "power_loss":
                self._power_cut("scheduled")
            elif fault.action == "die_failed":
                survivors = {
                    lpa: v for lpa, v in self.expected.items() if lpa in self.ftl.mapping
                }
                dropped = len(self.expected) - len(survivors)
                self.expected = survivors
                self.event_log.append(f"op={op} die quarantine dropped {dropped} lpas")
            elif fault.action == "dram_corrupted":
                for message in self.guard.sweep():
                    self.event_log.append(
                        f"op={op} tenant {message.tee_id} aborted: enclave torn down,"
                        " other tenants unaffected"
                    )
                    tenant = self.guard.restart(message.tee_id)
                    if self.monitors is not None:
                        # fresh enclave generation: re-arm the monitor so its
                        # counter shadows restart with the new MEE
                        self.monitors.attach_mee(
                            tenant.mee, f"tenant{message.tee_id}"
                        )
                    # the restart replays the journaled write epoch: every
                    # line committed before the abort must round-trip
                    bad = sum(
                        1
                        for page, line in tenant.lines_written
                        if self.guard.read(message.tee_id, page, line)
                        != tenant.journal[(page, line)]
                    )
                    if bad:
                        self.invariant_violations += bad
                        self.event_log.append(
                            f"op={op} tenant {message.tee_id} replay lost {bad} lines"
                        )
                    self.event_log.append(
                        f"op={op} tenant {message.tee_id} restarted"
                        f" gen={tenant.generation}"
                        f" replayed={len(tenant.lines_written)} lines"
                    )

    # -- the run ---------------------------------------------------------------

    def prepare(self) -> None:
        """Seed the tenants and age the flash (the pre-fault-window phase).

        Three passes over the working set ages the flash enough that GC
        runs during the fault window. Called implicitly by :meth:`run_until`.
        """
        if self._prepared:
            raise RuntimeError("chaos runner is already prepared")
        self._prepared = True
        for tee_id in (1, 2):
            self._seed_tenant(tee_id)
        for _ in range(3):
            for lpa in range(WORKING_SET):
                self._write(lpa, self._tag)
                self._tag += 1

    def step(self) -> None:
        """Execute exactly one chaos operation (due faults + one host I/O)."""
        op = self._next_op
        self._handle_applied(op, self.injector.fire(op))
        if self.rng.next_float() < self.write_fraction or not self.expected:
            lpa = self.rng.next_below(WORKING_SET)
            self._write(lpa, self._tag)
            self._tag += 1
        else:
            keys = sorted(self.expected)
            self._read(op, keys[self.rng.next_below(len(keys))])
        self._next_op += 1

    @property
    def ops_executed(self) -> int:
        return self._next_op

    def run_until(self, op_count: int) -> None:
        """Advance to (at most) ``op_count`` executed operations."""
        if not self._prepared:
            self.prepare()
        stop = min(op_count, self.ops)
        while self._next_op < stop:
            self.step()

    def finalize(self) -> ChaosReport:
        """Final verification sweep and report (after all ops executed)."""
        if self.injector.gc_cut_armed:
            # the armed mid-GC cut never met a GC pass; fall back to a
            # between-ops cut so the scheduled fault still happens
            self.injector.gc_cut_armed = False
            self.event_log.append("armed gc cut never fired; cutting between ops")
            self._power_cut("fallback")
        self._verify_expected("final")
        live = self.guard.live_tenants()
        if live != [1, 2]:
            self.invariant_violations += 1
            self.event_log.append(f"final: tenants not all restored: {live}")
        ftl_counters = {
            "host_reads": self.ftl.stats.host_reads,
            "host_writes": self.ftl.stats.host_writes,
            "gc_relocations": self.ftl.stats.gc_relocations,
            "gc_erases": self.ftl.stats.gc_erases,
            "wl_migrations": self.ftl.stats.wl_migrations,
            "mapped_lpas": len(self.ftl.mapping),
            "ecc_reads": self.ftl.ecc.reads,
            "ecc_injected_reads": self.ftl.ecc.injected_reads,
        }
        return ChaosReport(
            workload=self.workload,
            seed=self.seed,
            ops=self.ops,
            reliability=self.stats.as_dict(),
            plan_summary={k.value: v for k, v in self.plan.by_kind().items()},
            nvme_statuses=dict(self.nvme_statuses),
            ftl_counters=ftl_counters,
            invariant_violations=self.invariant_violations,
            event_log=list(self.event_log),
        )

    def run(self) -> ChaosReport:
        self.run_until(self.ops)
        return self.finalize()

    # -- monitors ---------------------------------------------------------------

    def arm_monitors(self, suite) -> None:
        """Attach a runtime invariant monitor (:mod:`repro.recovery`).

        Duck-typed on purpose: faults must not import the recovery layer.
        The suite is re-attached to a tenant's fresh MEE on every restart so
        its counter-monotonicity shadows reset with the enclave generation.
        """
        self.monitors = suite
        self.ftl.invariant_monitor = suite
        suite.attach_ftl(self.ftl)
        for tee_id, tenant in sorted(self.guard.tenants.items()):
            suite.attach_mee(tenant.mee, f"tenant{tee_id}")

    # -- checkpoint/restore ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Everything a resumed run needs to draw the same bytes.

        Composes the component snapshots (FTL stack, tenant enclaves,
        injector latch, PRNG) with the harness's own cursor and ground-truth
        tables. Monitors are deliberately absent — the owner re-arms them.
        """
        return {
            "next_op": self._next_op,
            "tag": self._tag,
            "prepared": self._prepared,
            "rng": self.rng.snapshot_state(),
            "stats": self.stats.snapshot_state(),
            "ftl": self.ftl.snapshot_state(),
            "guard": self.guard.snapshot_state(),
            "injector": self.injector.snapshot_state(),
            "expected": sorted(self.expected.items()),
            "event_log": list(self.event_log),
            "nvme_statuses": sorted(self.nvme_statuses.items()),
            "invariant_violations": self.invariant_violations,
        }

    def restore_state(self, state: dict) -> None:
        self._next_op = state["next_op"]
        self._tag = state["tag"]
        self._prepared = state["prepared"]
        self.rng.restore_state(state["rng"])
        self.stats.restore_state(state["stats"])
        self.ftl.restore_state(state["ftl"])
        self.guard.restore_state(state["guard"])
        self.injector.restore_state(state["injector"])
        self.expected = {lpa: payload for lpa, payload in state["expected"]}
        self.event_log = list(state["event_log"])
        self.nvme_statuses = {name: count for name, count in state["nvme_statuses"]}
        self.invariant_violations = state["invariant_violations"]


def run_chaos(
    workload: str,
    write_ratio: float,
    seed: int = 42,
    ops: int = 3000,
    plan_config: Optional[FaultPlanConfig] = None,
) -> ChaosReport:
    """Build a runner and execute it once (see :class:`ChaosRunner`)."""
    return ChaosRunner(
        workload, write_ratio, seed=seed, ops=ops, plan_config=plan_config
    ).run()
