"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live SSD stack.

The injector owns the *mechanics* of each fault class — forcing raw-error
counts into the ECC decoder, failing dies, flipping protected-DRAM bits,
arming a power cut inside GC — while the chaos harness owns the policy of
when to verify invariants and how to account for lost data. Everything here
is a pure function of the plan (and therefore of the seed): no wall-clock,
no unseeded randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.faults.errors import PowerLossError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.recovery import EnclaveIntegrityGuard
from repro.ftl.ftl import Ftl
from repro.sim.stats import ReliabilityStats


@dataclass(frozen=True)
class AppliedFault:
    """What actually happened when an event fired."""

    event: FaultEvent
    action: str
    detail: str

    def describe(self) -> str:
        return f"{self.event.describe()} action={self.action} {self.detail}"


class FaultInjector:
    """Fires plan events against an FTL (and optionally tenant enclaves)."""

    def __init__(
        self,
        plan: FaultPlan,
        ftl: Ftl,
        guard: Optional[EnclaveIntegrityGuard] = None,
        stats: Optional[ReliabilityStats] = None,
    ) -> None:
        if ftl.ecc is None:
            raise ValueError("attach_reliability() before wiring the injector")
        self.plan = plan
        self.ftl = ftl
        self.guard = guard
        self.stats = stats if stats is not None else ftl.reliability
        self.gc_cut_armed = False
        self.applied: List[AppliedFault] = []  # repro: allow[recovery-unserialized-state] -- diagnostic log; the chaos event_log carries the durable record
        self._events_by_op = {}  # repro: allow[recovery-unserialized-state] -- derived index rebuilt from the plan on construction
        for event in plan.events:
            self._events_by_op.setdefault(event.op_index, []).append(event)
        # wire the mid-GC power-cut hook
        ftl.gc.fault_hook = self._gc_hook

    # -- hooks -----------------------------------------------------------------

    def _gc_hook(self, point: str) -> None:
        if self.gc_cut_armed and point == "gc_mid_relocate":
            self.gc_cut_armed = False
            raise PowerLossError(point)

    # -- checkpoint/restore ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Only the armed mid-GC cut latch; the plan is constructor input."""
        return {"gc_cut_armed": self.gc_cut_armed}

    def restore_state(self, state: dict) -> None:
        self.gc_cut_armed = state["gc_cut_armed"]

    # -- event application --------------------------------------------------------

    def fire(self, op_index: int) -> List[AppliedFault]:
        """Apply every event due at ``op_index``; returns what was done."""
        fired: List[AppliedFault] = []
        for event in self._events_by_op.get(op_index, []):
            fired.append(self._apply(event))
        self.applied.extend(fired)
        return fired

    def _apply(self, event: FaultEvent) -> AppliedFault:
        self.stats.faults_injected += 1
        t = self.ftl.ecc.config.correctable_bits
        if event.kind is FaultKind.READ_BURST:
            # a transient burst: the first read needs one retry level, the
            # tail of the burst is heavy but still inline-correctable
            errors = t + 1 + event.param % t
            self.ftl.ecc.inject(errors)
            self.ftl.ecc.inject(t // 2)
            self.ftl.ecc.inject(t // 3)
            return AppliedFault(event, "ecc_injected", f"errors={errors} burst=3")
        if event.kind is FaultKind.UNCORRECTABLE_PAGE:
            errors = 5 * t + event.param % t
            self.ftl.ecc.inject(errors)
            return AppliedFault(event, "ecc_injected", f"errors={errors}")
        if event.kind is FaultKind.HARD_UNCORRECTABLE:
            errors = 100 * t
            self.ftl.ecc.inject(errors)
            return AppliedFault(event, "ecc_injected", f"errors={errors} hard=1")
        if event.kind is FaultKind.DIE_FAILURE:
            return self._fail_die(event)
        if event.kind is FaultKind.DRAM_CORRUPTION:
            return self._corrupt_dram(event)
        if event.kind is FaultKind.POWER_LOSS:
            return AppliedFault(event, "power_loss", "between-ops cut")
        if event.kind is FaultKind.POWER_LOSS_MID_GC:
            self.gc_cut_armed = True
            return AppliedFault(event, "gc_cut_armed", "cut fires mid-relocation")
        raise ValueError(f"unhandled fault kind {event.kind}")  # pragma: no cover

    def _fail_die(self, event: FaultEvent) -> AppliedFault:
        chip = self.ftl.chip
        total = chip.geometry.total_dies
        healthy = [d for d in range(total) if d not in chip.failed_dies]
        if len(healthy) <= 1:
            return AppliedFault(event, "skipped", "refusing to fail the last die")
        die = healthy[event.param % len(healthy)]
        chip.fail_die(die)
        lost = self.ftl.quarantine_die(die)
        self.stats.dies_failed += 1
        # pages stranded on the die are unrecoverable without redundancy
        self.stats.faults_fatal += lost
        return AppliedFault(event, "die_failed", f"die={die} mappings_lost={lost}")

    def _corrupt_dram(self, event: FaultEvent) -> AppliedFault:
        if self.guard is None or not self.guard.tenants:
            return AppliedFault(event, "skipped", "no tenant enclaves registered")
        live = self.guard.live_tenants()
        if not live:
            return AppliedFault(event, "skipped", "no live tenants")
        tee_id = live[event.param % len(live)]
        tenant = self.guard.tenants[tee_id]
        if not tenant.lines_written:
            return AppliedFault(event, "skipped", f"tenant {tee_id} has no lines")
        page, line = tenant.lines_written[event.param % len(tenant.lines_written)]
        mode = (event.param // 7) % 3
        if mode == 0:
            tenant.mee.tamper_ciphertext(page, line)
            what = "ciphertext"
        elif mode == 1:
            tenant.mee.tamper_mac(page, line)
            what = "mac"
        else:
            try:
                tenant.mee.tamper_counter_tree(page)
                what = "merkle"
            except (KeyError, ValueError):
                tenant.mee.tamper_mac(page, line)
                what = "mac"
        return AppliedFault(
            event, "dram_corrupted", f"tenant={tee_id} page={page} line={line} what={what}"
        )
