"""Deterministic fault injection and recovery across the SSD stack.

Seed-reproducible fault plans (:mod:`repro.faults.plan`) are applied by a
:class:`~repro.faults.injector.FaultInjector` to the flash/FTL/MEE layers,
while :mod:`repro.faults.recovery` contains integrity violations to the
affected tenant and :mod:`repro.faults.chaos` drives whole runs under
``python -m repro chaos``.
"""

from repro.faults.chaos import ChaosReport, ChaosRunner, run_chaos
from repro.faults.errors import PowerLossError
from repro.faults.injector import AppliedFault, FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, FaultPlanConfig
from repro.faults.recovery import EnclaveIntegrityGuard, TenantEnclave

__all__ = [
    "AppliedFault",
    "ChaosReport",
    "ChaosRunner",
    "EnclaveIntegrityGuard",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanConfig",
    "PowerLossError",
    "TenantEnclave",
    "run_chaos",
]
