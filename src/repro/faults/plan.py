"""Deterministic fault plans.

A :class:`FaultPlan` is a seed-reproducible schedule of fault events pinned
to *operation indices* (not wall-clock time): the Nth logical I/O the chaos
harness issues triggers the same fault on every run with the same seed.
That is what makes the acceptance invariant — same seed + plan ⇒ identical
event log and stats — checkable at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Dict, List

from repro.crypto.prng import XorShift64


class FaultKind(Enum):
    """The fault classes the injector knows how to apply."""

    READ_BURST = "read_burst"  # transient bit-error burst, ECC+1 retry fixes it
    UNCORRECTABLE_PAGE = "uncorrectable_page"  # needs deep retry, then scrub
    HARD_UNCORRECTABLE = "hard_uncorrectable"  # beyond retry: data loss
    DIE_FAILURE = "die_failure"  # a whole die goes dark
    DRAM_CORRUPTION = "dram_corruption"  # counter/Merkle/MAC bits flip in DRAM
    POWER_LOSS = "power_loss"  # clean cut between operations
    POWER_LOSS_MID_GC = "power_loss_mid_gc"  # cut lands inside a GC relocation


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fires just before operation ``op_index``."""

    op_index: int
    kind: FaultKind
    # deterministic per-event parameter (die number, tenant pick, error
    # magnitude scale...); meaning depends on the kind
    param: int = 0

    def describe(self) -> str:
        return f"op={self.op_index} kind={self.kind.value} param={self.param}"


@dataclass(frozen=True)
class FaultPlanConfig:
    """How many faults of each class to schedule across a run."""

    read_bursts: int = 6
    uncorrectable_pages: int = 3
    hard_uncorrectables: int = 1
    die_failures: int = 1
    dram_corruptions: int = 2
    power_losses: int = 1
    power_losses_mid_gc: int = 1

    def total(self) -> int:
        return (
            self.read_bursts
            + self.uncorrectable_pages
            + self.hard_uncorrectables
            + self.die_failures
            + self.dram_corruptions
            + self.power_losses
            + self.power_losses_mid_gc
        )

    # -- genome encoding (repro.search) ----------------------------------------
    #
    # A plan config is one dimension of a search Scenario genome, so it
    # round-trips through plain primitives: field name -> count, always in
    # dataclass field order.

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, genes: Dict[str, int]) -> "FaultPlanConfig":
        """Build a config from a gene dict; unknown genes are an error,
        missing genes default to zero (a shrunk-away fault class)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(genes) - known)
        if unknown:
            raise ValueError(f"unknown fault genes: {', '.join(unknown)}")
        counts = {name: int(genes.get(name, 0)) for name in sorted(known)}
        for name, count in sorted(counts.items()):
            if count < 0:
                raise ValueError(f"fault gene {name} must be >= 0, got {count}")
        return cls(**counts)


@dataclass
class FaultPlan:
    """An ordered, deterministic schedule of :class:`FaultEvent`."""

    seed: int
    total_ops: int
    events: List[FaultEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int,
        total_ops: int,
        config: FaultPlanConfig = FaultPlanConfig(),
    ) -> "FaultPlan":
        """Sample a schedule from the seed; same inputs ⇒ same plan."""
        if total_ops < 1:
            raise ValueError("need at least one operation to schedule against")
        rng = XorShift64(seed or 1)
        events: List[FaultEvent] = []
        # leave the first tenth of the run fault-free so there is committed
        # state worth corrupting, and the last op free so recovery is observed
        low = max(1, total_ops // 10)
        span = max(1, total_ops - 1 - low)

        def schedule(count: int, kind: FaultKind) -> None:
            for _ in range(count):
                op = low + rng.next_below(span)
                events.append(FaultEvent(op, kind, param=rng.next_below(1 << 16)))

        schedule(config.read_bursts, FaultKind.READ_BURST)
        schedule(config.uncorrectable_pages, FaultKind.UNCORRECTABLE_PAGE)
        schedule(config.hard_uncorrectables, FaultKind.HARD_UNCORRECTABLE)
        schedule(config.die_failures, FaultKind.DIE_FAILURE)
        schedule(config.dram_corruptions, FaultKind.DRAM_CORRUPTION)
        schedule(config.power_losses, FaultKind.POWER_LOSS)
        schedule(config.power_losses_mid_gc, FaultKind.POWER_LOSS_MID_GC)
        events.sort(key=lambda e: (e.op_index, e.kind.value, e.param))
        return cls(seed=seed, total_ops=total_ops, events=events)

    def due(self, op_index: int) -> List[FaultEvent]:
        """Events scheduled for exactly this operation index."""
        return [e for e in self.events if e.op_index == op_index]

    def by_kind(self) -> Dict[FaultKind, int]:
        counts: Dict[FaultKind, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def describe(self) -> List[str]:
        return [e.describe() for e in self.events]
