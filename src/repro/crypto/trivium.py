"""Trivium stream cipher (De Canniere & Preneel, eSTREAM portfolio).

IceClave's stream-cipher engine (§5, Figure 10) uses Trivium to cipher data
moving between flash chips and SSD DRAM. The IV is composed from the flash
physical page address concatenated with PRNG output, which guarantees spatial
and temporal uniqueness (see :class:`repro.core.cipher_engine.StreamCipherEngine`).

Two implementations live here:

- :class:`Trivium` — an integer-packed implementation used by the library.
- :class:`TriviumReference` — a literal, bit-list transcription of the
  specification, used only by the test suite to cross-check :class:`Trivium`.

Both follow the spec exactly: a 288-bit state, 80-bit key and IV, and
4 x 288 warm-up rounds before keystream output.
"""

from __future__ import annotations

KEY_BYTES = 10
IV_BYTES = 10
_STATE_BITS = 288
_WARMUP_ROUNDS = 4 * _STATE_BITS


def _bits_from_bytes(data: bytes) -> list:
    """Expand bytes into a list of bits, LSB of each byte first (spec order)."""
    bits = []
    for byte in data:
        for i in range(8):
            bits.append((byte >> i) & 1)
    return bits


def _bytes_from_bits(bits: list) -> bytes:
    out = bytearray(len(bits) // 8)
    for i, bit in enumerate(bits):
        if bit:
            out[i >> 3] |= 1 << (i & 7)
    return bytes(out)


class TriviumReference:
    """Literal transcription of the Trivium specification (bit lists).

    Slow; exists so tests can cross-validate the packed implementation
    against an independently written one.
    """

    def __init__(self, key: bytes, iv: bytes) -> None:
        if len(key) != KEY_BYTES or len(iv) != IV_BYTES:
            raise ValueError("Trivium needs an 80-bit key and an 80-bit IV")
        key_bits = _bits_from_bytes(key)
        iv_bits = _bits_from_bytes(iv)
        # s1..s93 = key || 0^13 ; s94..s177 = iv || 0^4 ; s178..s288 = 0^108 || 1^3
        self._s = (
            key_bits + [0] * 13 + iv_bits + [0] * 4 + [0] * 108 + [1, 1, 1]
        )
        assert len(self._s) == _STATE_BITS
        for _ in range(_WARMUP_ROUNDS):
            self._clock()

    def _clock(self) -> int:
        s = self._s
        t1 = s[65] ^ s[92]
        t2 = s[161] ^ s[176]
        t3 = s[242] ^ s[287]
        z = t1 ^ t2 ^ t3
        t1 = t1 ^ (s[90] & s[91]) ^ s[170]
        t2 = t2 ^ (s[174] & s[175]) ^ s[263]
        t3 = t3 ^ (s[285] & s[286]) ^ s[68]
        self._s = [t3] + s[0:92] + [t1] + s[93:176] + [t2] + s[177:287]
        return z

    def keystream(self, nbytes: int) -> bytes:
        bits = [self._clock() for _ in range(nbytes * 8)]
        return _bytes_from_bits(bits)


class Trivium:
    """Trivium with the three shift registers packed into Python ints.

    Register A holds s1..s93 (bit i of the int is s_{i+1}), register B holds
    s94..s177, register C holds s178..s288. Shifting left by one inserts the
    new bit at position 0, matching the spec's (t3, s1, ..., s92) rotation.
    """

    def __init__(self, key: bytes, iv: bytes) -> None:
        if len(key) != KEY_BYTES or len(iv) != IV_BYTES:
            raise ValueError("Trivium needs an 80-bit key and an 80-bit IV")
        self._a = int.from_bytes(key, "little")  # s1..s80, rest zero
        self._b = int.from_bytes(iv, "little")  # s94..s173, rest zero
        self._c = 0b111 << 108  # s286..s288 set
        self._mask_a = (1 << 93) - 1
        self._mask_b = (1 << 84) - 1
        self._mask_c = (1 << 111) - 1
        for _ in range(_WARMUP_ROUNDS):
            self._clock()

    def _bit(self, reg: int, spec_index: int, base: int) -> int:
        return (reg >> (spec_index - base)) & 1

    def _clock(self) -> int:
        a, b, c = self._a, self._b, self._c
        t1 = self._bit(a, 66, 1) ^ self._bit(a, 93, 1)
        t2 = self._bit(b, 162, 94) ^ self._bit(b, 177, 94)
        t3 = self._bit(c, 243, 178) ^ self._bit(c, 288, 178)
        z = t1 ^ t2 ^ t3
        t1 ^= (self._bit(a, 91, 1) & self._bit(a, 92, 1)) ^ self._bit(b, 171, 94)
        t2 ^= (self._bit(b, 175, 94) & self._bit(b, 176, 94)) ^ self._bit(c, 264, 178)
        t3 ^= (self._bit(c, 286, 178) & self._bit(c, 287, 178)) ^ self._bit(a, 69, 1)
        self._a = ((a << 1) | t3) & self._mask_a
        self._b = ((b << 1) | t1) & self._mask_b
        self._c = ((c << 1) | t2) & self._mask_c
        return z

    def keystream(self, nbytes: int) -> bytes:
        """Generate ``nbytes`` of keystream."""
        out = bytearray(nbytes)
        for i in range(nbytes):
            byte = 0
            for bit_idx in range(8):
                byte |= self._clock() << bit_idx
            out[i] = byte
        return bytes(out)

    def process(self, data: bytes) -> bytes:
        """XOR ``data`` with keystream (encryption and decryption alike)."""
        stream = self.keystream(len(data))
        return bytes(d ^ s for d, s in zip(data, stream))


def encrypt(key: bytes, iv: bytes, data: bytes) -> bytes:
    """One-shot Trivium encryption (symmetric with :func:`decrypt`)."""
    return Trivium(key, iv).process(data)


def decrypt(key: bytes, iv: bytes, data: bytes) -> bytes:
    """One-shot Trivium decryption."""
    return Trivium(key, iv).process(data)
