"""Deterministic pseudo-random number generator for IV construction.

The stream-cipher engine builds IVs as PPA ‖ PRNG output (§5). A xorshift64*
generator gives the temporally unique component; determinism keeps the whole
simulation reproducible.
"""

from __future__ import annotations

from typing import Dict

_MASK64 = (1 << 64) - 1


class XorShift64:
    """xorshift64* PRNG (Vigna); 64-bit output per step, period 2^64 - 1."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        seed &= _MASK64
        if seed == 0:
            seed = 0x9E3779B97F4A7C15
        self._state = seed

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        x &= _MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def next_bytes(self, nbytes: int) -> bytes:
        out = bytearray()
        while len(out) < nbytes:
            out.extend(self.next_u64().to_bytes(8, "little"))
        return bytes(out[:nbytes])

    def next_below(self, bound: int) -> int:
        """Uniform integer in [0, bound) (simple modulo; fine for simulation)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def next_float(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) / float(1 << 53)

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> Dict[str, int]:
        return {"state": self._state}

    def restore_state(self, state: Dict[str, int]) -> None:
        self._state = state["state"]
