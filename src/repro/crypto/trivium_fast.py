"""Word-parallel Trivium: 64 keystream bits per step.

Trivium's minimum distance between any feedback input and the nearest tap
that consumes it is 65/66/69 bits, so up to 64 clocks can be evaluated at
once with word operations — exactly the property the paper's hardware
engine exploits to emit 64 keystream bits per cycle (Figure 10). This
implementation mirrors that datapath and is ~64x faster than the bitwise
:class:`~repro.crypto.trivium.Trivium`, which the test suite cross-checks
it against bit-for-bit.

Representation: each shift register is an int with the *oldest* state bit
at position 0 (register A: bit p holds s_{93-p}), so one clock is a right
shift with the feedback bit inserted at the top, and a 64-step tap window
is a plain ``(reg >> tap) & MASK64`` — no bit reversal anywhere.
"""

from __future__ import annotations

import repro.speed as speed
from repro.crypto.trivium import IV_BYTES, KEY_BYTES

MASK64 = (1 << 64) - 1
_A_BITS, _B_BITS, _C_BITS = 93, 84, 111
_WARMUP_BLOCKS = 18  # 18 x 64 = 1152 = 4 x 288 spec warm-up clocks
# below this many blocks the ctypes call overhead beats the C win
_COMPILED_MIN_BLOCKS = 4


def _reversed_bits(value: int, width: int) -> int:
    """Bit-reverse ``value`` within ``width`` bits."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


class TriviumFast:
    """Drop-in keystream generator equivalent to :class:`Trivium`.

    Generates keystream in 8-byte blocks; arbitrary byte counts are served
    from an internal buffer so outputs match the bitwise implementation for
    any request pattern.
    """

    def __init__(self, key: bytes, iv: bytes) -> None:
        if len(key) != KEY_BYTES or len(iv) != IV_BYTES:
            raise ValueError("Trivium needs an 80-bit key and an 80-bit IV")
        key_bits = int.from_bytes(key, "little")
        iv_bits = int.from_bytes(iv, "little")
        # key bit i sits at s_{i+1}; in oldest-first order that is bit 92-i
        self._a = _reversed_bits(key_bits, 80) << 13
        self._b = _reversed_bits(iv_bits, 80) << 4
        self._c = 0b111  # s286..s288 = 1 -> positions 2,1,0
        self._buffer = b""
        self._blocks(_WARMUP_BLOCKS)  # spec warm-up; output discarded

    def _block(self) -> int:
        """Advance 64 clocks; returns the 64 output bits (bit j = z_{t+j})."""
        a, b, c = self._a, self._b, self._c
        t1 = ((a >> 27) ^ a) & MASK64  # s66 ^ s93
        t2 = ((b >> 15) ^ b) & MASK64  # s162 ^ s177
        t3 = ((c >> 45) ^ c) & MASK64  # s243 ^ s288
        z = t1 ^ t2 ^ t3
        # feedback words (nonlinear taps + cross-register linear tap)
        new_b = (t1 ^ ((a >> 2) & (a >> 1)) ^ (b >> 6)) & MASK64  # s91.s92 + s171
        new_c = (t2 ^ ((b >> 2) & (b >> 1)) ^ (c >> 24)) & MASK64  # s175.s176 + s264
        new_a = (t3 ^ ((c >> 2) & (c >> 1)) ^ (a >> 24)) & MASK64  # s286.s287 + s69
        self._a = (a >> 64) | (new_a << (_A_BITS - 64))
        self._b = (b >> 64) | (new_b << (_B_BITS - 64))
        self._c = (c >> 64) | (new_c << (_C_BITS - 64))
        return z

    def _blocks(self, nblocks: int) -> bytes:
        """``nblocks`` x 64 keystream bits, advancing the registers.

        Routed through the C kernel under ``REPRO_SPEED=compiled`` when the
        library is built (byte-identical by construction and pinned by the
        differential tests); the word-parallel python step otherwise.
        """
        if nblocks >= _COMPILED_MIN_BLOCKS:
            compiled = speed.trivium_blocks(self._a, self._b, self._c, nblocks)
            if compiled is not None:
                stream, self._a, self._b, self._c = compiled
                return stream
        block = self._block
        # collect whole 8-byte words and join once, instead of growing an
        # immutable bytes object per block
        return b"".join(block().to_bytes(8, "little") for _ in range(nblocks))

    def keystream(self, nbytes: int) -> bytes:
        """Generate ``nbytes`` of keystream (LSB-first bit packing)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        buffered = len(self._buffer)
        if buffered < nbytes:
            needed_blocks = (nbytes - buffered + 7) >> 3
            self._buffer += self._blocks(needed_blocks)
        out, self._buffer = self._buffer[:nbytes], self._buffer[nbytes:]
        return out

    def process(self, data: bytes) -> bytes:
        """XOR ``data`` with keystream (encryption and decryption alike)."""
        stream = self.keystream(len(data))
        n = len(data)
        # one big-int XOR instead of a per-byte generator
        return (
            int.from_bytes(data, "little") ^ int.from_bytes(stream, "little")
        ).to_bytes(n, "little")
