"""Cryptographic primitives used by IceClave's protection machinery.

- :mod:`repro.crypto.trivium` — the Trivium stream cipher (De Canniere &
  Preneel), used by the flash→DRAM stream-cipher engine (§5 of the paper).
- :mod:`repro.crypto.aes` — AES-128, used as the block cipher that turns
  encryption counters into one-time pads in the MEE (§4.4).
- :mod:`repro.crypto.mac` — keyed MACs for memory integrity (Bonsai Merkle
  tree nodes).
- :mod:`repro.crypto.prng` — deterministic xorshift PRNG used to build
  stream-cipher IVs (PPA ‖ PRNG output).
"""

from repro.crypto.aes import AES128
from repro.crypto.mac import Mac, mac_digest
from repro.crypto.prng import XorShift64
from repro.crypto.trivium import Trivium
from repro.crypto.trivium_fast import TriviumFast

__all__ = ["AES128", "Mac", "mac_digest", "XorShift64", "Trivium", "TriviumFast"]
