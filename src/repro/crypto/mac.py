"""Keyed message authentication codes for memory integrity.

The Bonsai Merkle trees (§4.4) hash counter blocks and chain MACs up to a
root stored "on-chip". We use keyed BLAKE2b truncated to 8 bytes — the same
MAC width the split-counter literature assumes — via :func:`mac_digest`.
"""

from __future__ import annotations

import hashlib
import hmac

MAC_BYTES = 8


def mac_digest(key: bytes, *parts: bytes) -> bytes:
    """Compute a truncated keyed MAC over the concatenation of ``parts``.

    Each part is length-prefixed before hashing so that ("ab", "c") and
    ("a", "bc") cannot collide.
    """
    h = hashlib.blake2b(key=key, digest_size=MAC_BYTES)
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()


class Mac:
    """A stateful MAC helper bound to one key."""

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("MAC key must be non-empty")
        self._key = key

    def digest(self, *parts: bytes) -> bytes:
        return mac_digest(self._key, *parts)

    def verify(self, tag: bytes, *parts: bytes) -> bool:
        """Constant-time comparison of ``tag`` against the computed MAC."""
        return hmac.compare_digest(tag, self.digest(*parts))
