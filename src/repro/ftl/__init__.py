"""Flash Translation Layer: the core flash-management substrate (§2.1).

Page-level logical→physical mapping with per-entry TEE ID bits (§4.3),
log-structured page allocation, greedy garbage collection, wear leveling,
and the DFTL-style cached mapping table that IceClave places in the
protected memory region (§4.2).
"""

from repro.ftl.mapping import MappingEntry, MappingTable, PUBLIC_ID
from repro.ftl.page_allocator import PageAllocator
from repro.ftl.gc import GarbageCollector, GcResult
from repro.ftl.wear_leveling import WearLeveler
from repro.ftl.mapping_cache import MappingCache
from repro.ftl.ftl import Ftl, FtlOpCost

__all__ = [
    "MappingEntry",
    "MappingTable",
    "PUBLIC_ID",
    "PageAllocator",
    "GarbageCollector",
    "GcResult",
    "WearLeveler",
    "MappingCache",
    "Ftl",
    "FtlOpCost",
]
