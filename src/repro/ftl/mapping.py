"""Logical→physical address mapping table with TEE ID bits (§4.3).

Each 8-byte entry stores the PPA plus 4 ID bits identifying the in-storage
TEE allowed to read it (so 16 concurrent TEE IDs; IceClave recycles IDs).
ID 0 (:data:`PUBLIC_ID`) marks data not owned by any TEE — host-written data
that has not been claimed via ``SetIDBits``.

A malicious program probing entries owned by another TEE is denied
(:class:`AccessDeniedError`), which is exactly attack (2) of the threat
model. The table also maintains the PPA→LPA reverse map GC needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

ID_BITS = 4
MAX_TEE_ID = (1 << ID_BITS) - 1
PUBLIC_ID = 0
ENTRY_BYTES = 8


class AccessDeniedError(Exception):
    """A TEE touched a mapping entry it does not own."""


@dataclass
class MappingEntry:
    ppa: int
    owner: int = PUBLIC_ID  # TEE ID bits; PUBLIC_ID = unowned

    def packed(self) -> int:
        """Encode as the 8-byte on-DRAM entry (ID bits in the top nibble)."""
        return (self.owner << 60) | self.ppa

    @classmethod
    def unpack(cls, raw: int) -> "MappingEntry":
        return cls(ppa=raw & ((1 << 60) - 1), owner=raw >> 60)


class MappingTable:
    """Sparse page-level mapping table.

    Invariant: the LPA→PPA map is injective — two logical pages never share
    a physical page. ``lookup`` enforces the ID-bit permission check; FTL
    internals use ``entry_unchecked`` (they run in the secure world).
    """

    def __init__(self, total_logical_pages: int) -> None:
        if total_logical_pages < 1:
            raise ValueError("need at least one logical page")
        self.total_logical_pages = total_logical_pages
        self._forward: Dict[int, MappingEntry] = {}
        self._reverse: Dict[int, int] = {}  # ppa -> lpa
        self.permission_checks = 0
        self.permission_denials = 0

    def __len__(self) -> int:
        return len(self._forward)

    def __contains__(self, lpa: int) -> bool:
        return lpa in self._forward

    def _check_lpa(self, lpa: int) -> None:
        if not 0 <= lpa < self.total_logical_pages:
            raise ValueError(f"LPA {lpa} out of range [0, {self.total_logical_pages})")

    # -- secure-world (FTL-internal) interface --------------------------------

    def entry_unchecked(self, lpa: int) -> Optional[MappingEntry]:
        """Raw entry access without permission checks (secure world only)."""
        self._check_lpa(lpa)
        return self._forward.get(lpa)

    def update(self, lpa: int, ppa: int, owner: Optional[int] = None) -> Optional[int]:
        """Point ``lpa`` at ``ppa``; returns the previous PPA (now stale).

        Only FTL functions running in the secure world may call this — the
        protected region gives the normal world read-only access (§4.2).
        """
        self._check_lpa(lpa)
        if ppa in self._reverse and self._reverse[ppa] != lpa:
            raise ValueError(f"PPA {ppa} already mapped to LPA {self._reverse[ppa]}")
        old = self._forward.get(lpa)
        old_ppa = None
        if old is not None:
            old_ppa = old.ppa
            self._reverse.pop(old.ppa, None)
        keep_owner = owner if owner is not None else (old.owner if old else PUBLIC_ID)
        self._forward[lpa] = MappingEntry(ppa=ppa, owner=keep_owner)
        self._reverse[ppa] = lpa
        return old_ppa

    def clear(self) -> None:
        """Drop every entry (power loss: the table is DRAM-resident).

        Mutates in place so components holding a reference to the table
        (GC, wear leveler) observe the rebuilt state after recovery.
        """
        self._forward.clear()
        self._reverse.clear()

    def unmap(self, lpa: int) -> Optional[int]:
        """Remove a mapping (trim); returns the freed PPA if there was one."""
        self._check_lpa(lpa)
        old = self._forward.pop(lpa, None)
        if old is None:
            return None
        self._reverse.pop(old.ppa, None)
        return old.ppa

    def lpa_of_ppa(self, ppa: int) -> Optional[int]:
        """Reverse lookup used by GC to find the owner of a valid page."""
        return self._reverse.get(ppa)

    def set_id_bits(self, lpa: int, tee_id: int) -> None:
        """SetIDBits(): stamp ownership on an entry at TEE creation (§4.5)."""
        self._check_lpa(lpa)
        if not 0 <= tee_id <= MAX_TEE_ID:
            raise ValueError(f"TEE ID must fit in {ID_BITS} bits")
        entry = self._forward.get(lpa)
        if entry is None:
            raise KeyError(f"LPA {lpa} has no mapping to stamp")
        entry.owner = tee_id

    def clear_id_bits(self, tee_id: int) -> int:
        """Release all entries owned by ``tee_id`` (TEE termination).

        Returns how many entries were released.
        """
        released = 0
        for entry in self._forward.values():
            if entry.owner == tee_id:
                entry.owner = PUBLIC_ID
                released += 1
        return released

    # -- normal-world (in-storage program) interface ----------------------------

    def lookup(self, lpa: int, tee_id: int) -> MappingEntry:
        """Permission-checked read of a mapping entry (§4.3).

        A TEE may read entries it owns and unowned (public) entries. Reading
        an entry owned by another TEE raises :class:`AccessDeniedError`.
        """
        self._check_lpa(lpa)
        self.permission_checks += 1
        entry = self._forward.get(lpa)
        if entry is None:
            raise KeyError(f"LPA {lpa} is unmapped")
        if entry.owner not in (PUBLIC_ID, tee_id):
            self.permission_denials += 1
            raise AccessDeniedError(
                f"TEE {tee_id} denied access to LPA {lpa} owned by TEE {entry.owner}"
            )
        return entry

    # -- checkpoint/restore ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Forward map as an insertion-ordered item list plus counters.

        The reverse map is derived state and is rebuilt on restore; capturing
        only the forward entries keeps the fingerprint from double-counting.
        """
        return {
            "forward": [
                (lpa, entry.ppa, entry.owner) for lpa, entry in self._forward.items()
            ],
            "permission_checks": self.permission_checks,
            "permission_denials": self.permission_denials,
        }

    def restore_state(self, state: dict) -> None:
        self._forward = {
            lpa: MappingEntry(ppa=ppa, owner=owner)
            for lpa, ppa, owner in state["forward"]
        }
        self._reverse = {entry.ppa: lpa for lpa, entry in self._forward.items()}
        self.permission_checks = state["permission_checks"]
        self.permission_denials = state["permission_denials"]

    # -- introspection -----------------------------------------------------------

    def items(self) -> Iterator:
        return iter(self._forward.items())

    def storage_bytes(self) -> int:
        """DRAM footprint of the table (8 bytes/entry, §4.3)."""
        return len(self._forward) * ENTRY_BYTES

    def id_bits_overhead(self) -> float:
        """Fractional storage cost of the ID bits (paper: 6.25%)."""
        return ID_BITS / (ENTRY_BYTES * 8)
