"""SsdSystem: logical I/O through the FTL with event-driven timing.

Glues :class:`~repro.ftl.ftl.Ftl` (functional state) to
:class:`~repro.flash.ssd.FlashDevice` (discrete-event timing): a logical
read/write performs its FTL work synchronously and then schedules *every*
resulting physical operation — including GC relocations and erases — on
the device, so request latencies reflect channel/die contention and GC
pauses the way SimpleSSD models them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.ssd import FlashDevice
from repro.flash.timing import FlashTiming
from repro.ftl.ftl import Ftl, FtlOpCost, WritesSuspendedError
from repro.ftl.mapping import PUBLIC_ID
from repro.sim.engine import Engine
from repro.sim.stats import Histogram

Callback = Optional[Callable[[float], None]]  # receives completion latency


@dataclass
class IoStats:
    reads_issued: int = 0
    writes_issued: int = 0
    writes_refused_degraded: int = 0
    read_latency: Histogram = field(
        default_factory=lambda: Histogram("read", keep_samples=True)
    )
    write_latency: Histogram = field(
        default_factory=lambda: Histogram("write", keep_samples=True)
    )
    gc_stalled_writes: int = 0


class SsdSystem:
    """A full SSD: FTL + event-driven flash, driven by logical requests."""

    def __init__(
        self,
        geometry: Optional[FlashGeometry] = None,
        timing: Optional[FlashTiming] = None,
        engine: Optional[Engine] = None,
        store_data: bool = False,
        degradation=None,  # duck-typed DegradationLadder: allows_writes()
        slo=None,  # duck-typed SloTracker: record(now, kind, latency, ok)
        **ftl_kwargs,
    ) -> None:
        self.engine = engine or Engine()
        self.geometry = geometry or FlashGeometry()
        chip = FlashChip(self.geometry, store_data=store_data)
        self.ftl = Ftl(self.geometry, chip=chip, **ftl_kwargs)
        self.device = FlashDevice(self.engine, self.geometry, timing, chip=None)
        self.stats = IoStats()
        self.degradation = degradation
        self.slo = slo

    def attach_slo(self, tracker) -> None:
        """Record every completed read/write into an SLO tracker."""
        self.slo = tracker

    # -- logical requests -----------------------------------------------------

    def read(self, lpa: int, tee_id: int = PUBLIC_ID, on_done: Callback = None) -> int:
        """Issue a logical read; returns the PPA being read.

        The permission check (ID bits) happens immediately; timing completes
        via ``on_done(latency_seconds)``.
        """
        ppa = self.ftl.translate(lpa, tee_id)
        start = self.engine.now
        self.stats.reads_issued += 1

        def finish() -> None:
            latency = self.engine.now - start
            self.stats.read_latency.record(latency)
            if self.slo is not None:
                self.slo.record(self.engine.now, "read", latency, ok=True)
            if on_done is not None:
                on_done(latency)

        self.device.read(ppa, on_done=finish)
        return ppa

    def write(self, lpa: int, data: Optional[bytes] = None, owner: Optional[int] = None,
              on_done: Callback = None) -> FtlOpCost:
        """Issue a logical write; GC/wear-leveling work rides on its latency.

        The FTL decides placement (and possibly reclaims blocks)
        synchronously; all resulting physical operations are scheduled on
        the device, and the request completes when its own program — queued
        behind any relocation traffic — finishes.

        When a degradation ladder is attached and the device has dropped to
        a read-only (or failsafe) mode, the write is refused *before* any
        FTL state changes with :class:`WritesSuspendedError` — the NVMe
        layer maps it to the retryable COMMAND_INTERRUPTED status.
        """
        if self.degradation is not None and not self.degradation.allows_writes():
            self.stats.writes_refused_degraded += 1
            mode = getattr(self.degradation, "mode", "degraded")
            raise WritesSuspendedError(getattr(mode, "value", str(mode)))
        cost = self.ftl.write(lpa, data, owner=owner)
        start = self.engine.now
        self.stats.writes_issued += 1
        if cost.gc is not None:
            self.stats.gc_stalled_writes += 1

        # GC relocations: reads then programs of the actual moved pages,
        # plus victim erases. They occupy the same channels/dies and
        # therefore delay the host program below.
        if cost.gc is not None:
            for victim in cost.gc.victims:
                self.device.erase(victim)
            for old_ppa, new_ppa in cost.gc.relocated:
                self.device.read(old_ppa, on_done=None)
                self.device.write(new_ppa, on_done=None)

        def finish() -> None:
            latency = self.engine.now - start
            self.stats.write_latency.record(latency)
            if self.slo is not None:
                self.slo.record(self.engine.now, "write", latency, ok=True)
            if on_done is not None:
                on_done(latency)

        assert cost.ppa is not None
        self.device.write(cost.ppa, on_done=finish)
        return cost

    # -- bulk helpers -------------------------------------------------------------

    def run_to_completion(self) -> float:
        """Drain all outstanding flash operations; returns the finish time."""
        return self.engine.run()

    def read_many(self, lpas: List[int]) -> float:
        """Issue a batch of reads and run until all complete."""
        for lpa in lpas:
            self.read(lpa)
        return self.run_to_completion()

    def write_many(self, lpas: List[int]) -> float:
        for lpa in lpas:
            self.write(lpa)
        return self.run_to_completion()

    # -- derived metrics -------------------------------------------------------------

    def mean_read_latency(self) -> float:
        return self.stats.read_latency.mean

    def mean_write_latency(self) -> float:
        return self.stats.write_latency.mean

    def p99_style_max_write(self) -> float:
        """Worst observed write latency (GC pauses surface here)."""
        return self.stats.write_latency.max or 0.0

    def read_latency_percentile(self, pct: float) -> float:
        """Exact read-latency percentile over the finished run."""
        return self.stats.read_latency.percentile(pct)

    def write_latency_percentile(self, pct: float) -> float:
        return self.stats.write_latency.percentile(pct)

    def write_amplification(self) -> float:
        """Physical writes per host write since the system was created."""
        return self.ftl.gc.write_amplification(self.stats.writes_issued)
