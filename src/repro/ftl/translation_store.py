"""Flash-resident translation pages (DFTL-style, after Gupta et al.).

The full page-level mapping table of a 1 TB SSD (~2 GB) cannot live in SSD
DRAM; DFTL keeps it in dedicated *translation pages* on flash, with a
global translation directory (GTD) locating the current flash copy of each
one. The protected-region cache (:class:`~repro.ftl.mapping_cache.
MappingCache`) holds the hot subset; on a miss the secure-world FTL reads
the translation page from flash (Figure 9 step ⑤), and dirty cached pages
are written back out-of-place, updating the GTD.

This module manages the translation pages' own flash residency: dedicated
blocks, out-of-place updates, and their garbage collection, with exact
counts of the extra flash traffic address translation causes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.flash.chip import FlashChip, PageState
from repro.flash.geometry import FlashGeometry

ENTRIES_PER_TRANSLATION_PAGE = 512  # 4 KB page / 8 B entry


@dataclass
class TranslationStats:
    page_reads: int = 0  # translation pages fetched from flash
    page_writes: int = 0  # dirty translation pages written back
    gc_relocations: int = 0
    block_erases: int = 0
    recoveries: int = 0  # GTD rebuilds after power loss
    recovery_scanned_pages: int = 0


class TranslationStore:
    """Flash residency of translation pages, over reserved blocks."""

    def __init__(
        self,
        geometry: FlashGeometry,
        chip: FlashChip,
        reserved_blocks: Optional[list] = None,
    ) -> None:
        self.geometry = geometry
        self.chip = chip
        # default: reserve the last blocks of the last plane
        if reserved_blocks is None:
            need = max(4, geometry.total_blocks // 64)
            reserved_blocks = list(range(geometry.total_blocks - need,
                                         geometry.total_blocks))
        if len(reserved_blocks) < 2:
            raise ValueError("need at least two reserved translation blocks")
        self.blocks = list(reserved_blocks)
        # GTD: translation-page number -> current flash PPA
        self.directory: Dict[int, int] = {}
        self._active_idx = 0
        self._next_page = 0
        self._free_blocks: Set[int] = set(self.blocks[1:])
        self._collecting = False
        self.stats = TranslationStats()

    # -- placement -----------------------------------------------------------

    def _allocate_slot(self) -> int:
        """Next free flash page among the reserved blocks (log order)."""
        block = self.blocks[self._active_idx]
        pages = self.chip.pages_of_block(block)
        while self._next_page >= len(pages) or (
            self.chip.page_state(pages[self._next_page]) is not PageState.FREE
        ):
            if self._next_page >= len(pages):
                self._open_next_block()
                block = self.blocks[self._active_idx]
                pages = self.chip.pages_of_block(block)
            else:
                self._next_page += 1
        ppa = pages[self._next_page]
        self._next_page += 1
        return ppa

    def _open_next_block(self) -> None:
        # a free block always exists here: collection runs *ahead* of
        # demand (below) so GC always has a relocation destination
        block = min(self._free_blocks)
        self._free_blocks.remove(block)
        self._active_idx = self.blocks.index(block)
        self._next_page = 0
        if not self._free_blocks and not self._collecting:
            self._collect()

    def _collect(self) -> None:
        """GC over translation blocks: keep only GTD-current pages."""
        live_ppas = set(self.directory.values())
        best_block = None
        best_live = None
        active = self.blocks[self._active_idx]
        for block in self.blocks:
            if block == active or block in self._free_blocks:
                continue
            live = sum(1 for p in self.chip.pages_of_block(block) if p in live_ppas)
            if best_live is None or live < best_live:
                best_live = live
                best_block = block
        if best_block is None:
            raise RuntimeError("translation store exhausted")
        # relocate live translation pages into the active block
        self._collecting = True
        for ppa in self.chip.pages_of_block(best_block):
            if ppa not in live_ppas:
                continue
            tpage = next(t for t, p in self.directory.items() if p == ppa)
            new_ppa = self._allocate_slot()
            self.chip.program(new_ppa, b"" if self.chip.store_data else None)
            self.chip.invalidate(ppa)
            self.directory[tpage] = new_ppa
            self.stats.gc_relocations += 1
        self._collecting = False
        self.chip.erase(best_block)
        self._free_blocks.add(best_block)
        self.stats.block_erases += 1

    # -- the cache-miss protocol ------------------------------------------------

    def fetch(self, tpage: int) -> Optional[int]:
        """Read a translation page from flash (cache-miss path).

        Returns the PPA read, or None when the page has never been written
        (a brand-new region of the logical space: the entries are all
        unmapped and the FTL synthesizes an empty page).
        """
        ppa = self.directory.get(tpage)
        if ppa is None:
            return None
        self.stats.page_reads += 1
        return ppa

    def writeback(self, tpage: int) -> int:
        """Persist a dirty translation page out-of-place; returns its new PPA."""
        new_ppa = self._allocate_slot()
        self.chip.program(new_ppa, b"" if self.chip.store_data else None)
        old = self.directory.get(tpage)
        if old is not None and self.chip.page_state(old) is PageState.VALID:
            self.chip.invalidate(old)
        self.directory[tpage] = new_ppa
        self.stats.page_writes += 1
        return new_ppa

    # -- power-loss recovery -----------------------------------------------------

    def recover(self) -> int:
        """Rebuild placement state after power loss; returns pages scanned.

        The GTD itself is recovered by scanning the reserved blocks (each
        translation page's flash copy names its translation-page number in
        the spare area, so the newest copy per page wins — the same
        journal-replay argument the data path uses). The volatile placement
        cursors are re-derived from the chip's write cursors: the reserved
        block with free tail pages becomes the active log head.
        """
        scanned = 0
        self._free_blocks.clear()
        active = None
        active_cursor = 0
        for block in self.blocks:
            cursor = self.chip.write_cursor(block)
            scanned += cursor
            if cursor == 0:
                self._free_blocks.add(block)
            elif cursor < self.geometry.pages_per_block and active is None:
                active, active_cursor = block, cursor
        if active is None:
            # every written block is full: open a free one as the log head
            active = min(self._free_blocks) if self._free_blocks else self.blocks[0]
            self._free_blocks.discard(active)
            active_cursor = self.chip.write_cursor(active)
        self._active_idx = self.blocks.index(active)
        self._next_page = active_cursor
        # entries whose flash copy did not survive (e.g. erased mid-GC by the
        # power cut) are dropped; the FTL re-synthesizes them on next miss
        self.directory = {
            t: p
            for t, p in self.directory.items()
            if self.chip.page_state(p) is PageState.VALID
        }
        self.stats.recoveries += 1
        self.stats.recovery_scanned_pages += scanned
        return scanned

    def resident_pages(self) -> int:
        return len(self.directory)

    def translation_page_of(self, lpa: int) -> int:
        return lpa // ENTRIES_PER_TRANSLATION_PAGE
