"""Cached mapping table held in the protected memory region (§4.2, §4.6).

The full page-level mapping table of a 1 TB SSD is ~2 GB, so only hot
translation pages are cached in SSD DRAM (DFTL-style). IceClave places this
cache in the *protected* region: in-storage programs read it directly for
address translation; a miss forces a world switch into the secure FTL, which
fetches the translation page from flash (``ReadMappingEntry``, step 4 of
Figure 9). The paper measures a 0.17% miss rate.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.ftl.mapping import ENTRY_BYTES


class MappingCache:
    """LRU cache of translation pages (one page maps 512 LPAs)."""

    def __init__(self, cache_bytes: int, page_bytes: int = 4096) -> None:
        if page_bytes <= 0 or page_bytes % ENTRY_BYTES:
            raise ValueError("page_bytes must be a positive multiple of entry size")
        self.page_bytes = page_bytes
        self.entries_per_page = page_bytes // ENTRY_BYTES
        self.capacity_pages = max(1, cache_bytes // page_bytes)
        self._lru: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def translation_page(self, lpa: int) -> int:
        return lpa // self.entries_per_page

    def access(self, lpa: int) -> bool:
        """Touch the translation page covering ``lpa``; True on hit.

        On a miss the page is fetched (caller charges the secure-world switch
        and the flash read) and inserted, evicting LRU if full.
        """
        tpage = self.translation_page(lpa)
        if tpage in self._lru:
            self._lru.move_to_end(tpage)
            self.hits += 1
            return True
        self.misses += 1
        self._insert(tpage)
        return False

    def _insert(self, tpage: int) -> None:
        if len(self._lru) >= self.capacity_pages:
            self._lru.popitem(last=False)
            self.evictions += 1
        self._lru[tpage] = True

    def contains(self, lpa: int) -> bool:
        """Non-mutating membership check."""
        return self.translation_page(lpa) in self._lru

    def invalidate_page(self, tpage: int) -> None:
        """Drop one translation page (e.g. after secure-world updates)."""
        self._lru.pop(tpage, None)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- checkpoint/restore ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """LRU contents as an item list: recency order is part of the state."""
        return {
            "lru": [(tpage, resident) for tpage, resident in self._lru.items()],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def restore_state(self, state: dict) -> None:
        self._lru = OrderedDict((tpage, resident) for tpage, resident in state["lru"])
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]
