"""Log-structured page allocation across planes.

Writes go to the "active block" of each plane, filling pages sequentially
(the order NAND requires); planes are selected round-robin so consecutive
writes stripe across channels. The allocator owns the free-block pools that
GC refills.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry


class OutOfSpaceError(Exception):
    """No free block is available in any plane (GC failed to keep up)."""


class PageAllocator:
    """Allocates free pages plane-by-plane in log order."""

    def __init__(self, geometry: FlashGeometry, chip: FlashChip) -> None:
        self.geometry = geometry
        self.chip = chip
        self._free_blocks: List[Deque[int]] = []
        self._active_block: List[Optional[int]] = []
        self._next_page: List[int] = []
        self._plane_rr = 0
        blocks_per_plane = geometry.blocks_per_plane
        for plane in range(geometry.total_planes):
            pool: Deque[int] = deque(
                plane * blocks_per_plane + b for b in range(blocks_per_plane)
            )
            self._free_blocks.append(pool)
            self._active_block.append(None)
            self._next_page.append(0)

    # -- free-block accounting ---------------------------------------------

    def free_blocks_in_plane(self, plane: int) -> int:
        count = len(self._free_blocks[plane])
        if self._active_block[plane] is not None:
            count += 1  # the active block still has room until it fills
        return count

    def total_free_blocks(self) -> int:
        return sum(len(pool) for pool in self._free_blocks) + sum(
            1 for b in self._active_block if b is not None
        )

    def release_block(self, block: int) -> None:
        """Return an erased block to its plane's free pool."""
        plane = block // self.geometry.blocks_per_plane
        if block in self._free_blocks[plane] or self._active_block[plane] == block:
            raise ValueError(f"block {block} is already free")
        self._free_blocks[plane].append(block)

    def is_active_block(self, block: int) -> bool:
        """True if ``block`` is currently being filled by the allocator."""
        plane = block // self.geometry.blocks_per_plane
        return self._active_block[plane] == block

    def take_block(self, plane: int) -> Optional[int]:
        """Remove and return a free block from a plane (for wear leveling)."""
        if not self._free_blocks[plane]:
            return None
        return self._free_blocks[plane].popleft()

    def least_worn_free_block(self, plane: int) -> Optional[int]:
        """Pop the least-worn free block of a plane (wear-aware allocation)."""
        pool = self._free_blocks[plane]
        if not pool:
            return None
        best = min(pool, key=self.chip.wear_of)
        pool.remove(best)
        return best

    # -- allocation ------------------------------------------------------------

    def allocate(self, plane: Optional[int] = None) -> int:
        """Return the next free PPA, opening a new active block as needed.

        Without an explicit ``plane`` the allocator round-robins planes,
        which stripes sequential writes across channels.
        """
        if plane is None:
            plane = self._pick_plane()
        if self._active_block[plane] is None:
            block = self.least_worn_free_block(plane)
            if block is None:
                raise OutOfSpaceError(f"plane {plane} has no free blocks")
            self._active_block[plane] = block
            self._next_page[plane] = 0
        block = self._active_block[plane]
        assert block is not None
        pages = self.chip.pages_of_block(block)
        ppa = pages[self._next_page[plane]]
        self._next_page[plane] += 1
        if self._next_page[plane] >= self.geometry.pages_per_block:
            self._active_block[plane] = None  # block is full; next alloc opens one
        return ppa

    def _pick_plane(self) -> int:
        total = self.geometry.total_planes
        for offset in range(total):
            plane = (self._plane_rr + offset) % total
            if self.free_blocks_in_plane(plane) > 0:
                self._plane_rr = (plane + 1) % total
                return plane
        raise OutOfSpaceError("every plane is out of free blocks")
