"""Log-structured page allocation across planes.

Writes go to the "active block" of each plane, filling pages sequentially
(the order NAND requires); planes are selected round-robin so consecutive
writes stripe across channels. The allocator owns the free-block pools that
GC refills.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set

from repro.flash.chip import FlashChip, PageState
from repro.flash.geometry import FlashGeometry


class OutOfSpaceError(Exception):
    """No free block is available in any plane (GC failed to keep up)."""


class PageAllocator:
    """Allocates free pages plane-by-plane in log order."""

    def __init__(self, geometry: FlashGeometry, chip: FlashChip) -> None:
        self.geometry = geometry
        self.chip = chip
        self._free_blocks: List[Deque[int]] = []
        self._active_block: List[Optional[int]] = []
        self._next_page: List[int] = []
        self._quarantined: Set[int] = set()  # planes on failed dies
        self._plane_rr = 0
        blocks_per_plane = geometry.blocks_per_plane
        for plane in range(geometry.total_planes):
            pool: Deque[int] = deque(
                plane * blocks_per_plane + b for b in range(blocks_per_plane)
            )
            self._free_blocks.append(pool)
            self._active_block.append(None)
            self._next_page.append(0)

    # -- free-block accounting ---------------------------------------------

    def free_blocks_in_plane(self, plane: int) -> int:
        if plane in self._quarantined:
            return 0
        count = len(self._free_blocks[plane])
        if self._active_block[plane] is not None:
            count += 1  # the active block still has room until it fills
        return count

    def total_free_blocks(self) -> int:
        return sum(len(pool) for pool in self._free_blocks) + sum(
            1 for b in self._active_block if b is not None
        )

    def release_block(self, block: int) -> None:
        """Return an erased block to its plane's free pool."""
        plane = block // self.geometry.blocks_per_plane
        if plane in self._quarantined:
            return  # the die is gone; never hand its blocks out again
        if block in self._free_blocks[plane] or self._active_block[plane] == block:
            raise ValueError(f"block {block} is already free")
        self._free_blocks[plane].append(block)

    def is_active_block(self, block: int) -> bool:
        """True if ``block`` is currently being filled by the allocator."""
        plane = block // self.geometry.blocks_per_plane
        return self._active_block[plane] == block

    def take_block(self, plane: int) -> Optional[int]:
        """Remove and return a free block from a plane (for wear leveling)."""
        if not self._free_blocks[plane]:
            return None
        return self._free_blocks[plane].popleft()

    def least_worn_free_block(self, plane: int) -> Optional[int]:
        """Pop the least-worn free block of a plane (wear-aware allocation)."""
        pool = self._free_blocks[plane]
        if not pool:
            return None
        best = min(pool, key=self.chip.wear_of)
        pool.remove(best)
        return best

    # -- fault handling ----------------------------------------------------------

    def quarantine_planes(self, planes: Iterable[int]) -> int:
        """Stop allocating in ``planes`` (their die failed); returns blocks lost."""
        lost = 0
        for plane in planes:
            if not 0 <= plane < self.geometry.total_planes:
                raise ValueError(f"plane {plane} out of range")
            if plane in self._quarantined:
                continue
            self._quarantined.add(plane)
            lost += len(self._free_blocks[plane])
            self._free_blocks[plane].clear()
            if self._active_block[plane] is not None:
                self._active_block[plane] = None
                lost += 1
        return lost

    def quarantined_planes(self) -> Set[int]:
        return set(self._quarantined)

    def rebuild_from_chip(self, exclude_blocks: Optional[Set[int]] = None) -> None:
        """Reconstruct allocator state by scanning the chip (power-loss path).

        Blocks whose write cursor is 0 return to the free pool; the
        partially-programmed block with the most free tail pages becomes the
        plane's active block (real FTLs pad the others closed — their free
        tail is unreachable until GC erases them). Quarantined planes and
        ``exclude_blocks`` (e.g. translation-store reservations) are skipped.
        """
        exclude = exclude_blocks or set()
        bpp = self.geometry.blocks_per_plane
        ppb = self.geometry.pages_per_block
        for plane in range(self.geometry.total_planes):
            self._free_blocks[plane].clear()
            self._active_block[plane] = None
            self._next_page[plane] = 0
            if plane in self._quarantined:
                continue
            best_partial = None
            best_free_tail = 0
            for block in range(plane * bpp, (plane + 1) * bpp):
                if block in exclude:
                    continue
                cursor = self.chip.write_cursor(block)
                if cursor == 0:
                    self._free_blocks[plane].append(block)
                elif cursor < ppb:
                    # the free tail must really be free (cursor is authoritative,
                    # but cheap to sanity-check on the page right at the cursor)
                    pages = self.chip.pages_of_block(block)
                    if self.chip.page_state(pages[cursor]) is PageState.FREE:
                        if ppb - cursor > best_free_tail:
                            best_free_tail = ppb - cursor
                            best_partial = block
            if best_partial is not None:
                self._active_block[plane] = best_partial
                self._next_page[plane] = ppb - best_free_tail
        self._plane_rr = 0

    # -- checkpoint/restore ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Free pools keep their deque order (allocation order is state)."""
        return {
            "free_blocks": [list(pool) for pool in self._free_blocks],
            "active_block": list(self._active_block),
            "next_page": list(self._next_page),
            "quarantined": sorted(self._quarantined),
            "plane_rr": self._plane_rr,
        }

    def restore_state(self, state: dict) -> None:
        self._free_blocks = [deque(pool) for pool in state["free_blocks"]]
        self._active_block = list(state["active_block"])
        self._next_page = list(state["next_page"])
        self._quarantined = set(state["quarantined"])
        self._plane_rr = state["plane_rr"]

    # -- allocation ------------------------------------------------------------

    def allocate(self, plane: Optional[int] = None) -> int:
        """Return the next free PPA, opening a new active block as needed.

        Without an explicit ``plane`` the allocator round-robins planes,
        which stripes sequential writes across channels.
        """
        if plane is None:
            plane = self._pick_plane()
        if plane in self._quarantined:
            raise OutOfSpaceError(f"plane {plane} is quarantined (die failure)")
        if self._active_block[plane] is None:
            block = self.least_worn_free_block(plane)
            if block is None:
                raise OutOfSpaceError(f"plane {plane} has no free blocks")
            self._active_block[plane] = block
            self._next_page[plane] = 0
        block = self._active_block[plane]
        assert block is not None
        pages = self.chip.pages_of_block(block)
        ppa = pages[self._next_page[plane]]
        self._next_page[plane] += 1
        if self._next_page[plane] >= self.geometry.pages_per_block:
            self._active_block[plane] = None  # block is full; next alloc opens one
        return ppa

    def _pick_plane(self) -> int:
        total = self.geometry.total_planes
        for offset in range(total):
            plane = (self._plane_rr + offset) % total
            if self.free_blocks_in_plane(plane) > 0:
                self._plane_rr = (plane + 1) % total
                return plane
        raise OutOfSpaceError("every plane is out of free blocks")
