"""FTL orchestrator: ties mapping, allocation, GC and wear leveling together.

The FTL is the secure-world component IceClave protects (§4.2). All methods
here are functional (they mutate chip/mapping state synchronously) and
return an :class:`FtlOpCost` describing the physical flash operations each
logical operation triggered, so the timing layer can charge them on the
discrete-event device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ftl.gc import GarbageCollector, GcResult
from repro.ftl.mapping import MappingTable, PUBLIC_ID
from repro.ftl.page_allocator import PageAllocator
from repro.ftl.wear_leveling import WearLeveler


@dataclass
class FtlOpCost:
    """Physical flash work performed by one logical FTL operation."""

    page_reads: int = 0
    page_programs: int = 0
    block_erases: int = 0
    ppa: Optional[int] = None  # resulting physical page for read/write
    gc: Optional[GcResult] = None


@dataclass
class FtlStats:
    host_reads: int = 0
    host_writes: int = 0
    gc_relocations: int = 0
    gc_erases: int = 0
    wl_migrations: int = 0
    disturb_refreshes: int = 0
    background_collections: int = 0


class Ftl:
    """Page-level FTL with greedy GC and static wear leveling."""

    def __init__(
        self,
        geometry: FlashGeometry,
        chip: Optional[FlashChip] = None,
        overprovision: float = 0.125,
        gc_watermark: int = 2,
        wear_threshold: int = 16,
        read_disturb_threshold: int = 100_000,
    ) -> None:
        if not 0.0 < overprovision < 1.0:
            raise ValueError("overprovision must be in (0, 1)")
        if read_disturb_threshold < 1:
            raise ValueError("read_disturb_threshold must be >= 1")
        self.geometry = geometry
        self.chip = chip or FlashChip(geometry)
        # logical space excludes the over-provisioned area GC needs
        self.logical_pages = int(geometry.total_pages * (1.0 - overprovision))
        self.mapping = MappingTable(self.logical_pages)
        self.allocator = PageAllocator(geometry, self.chip)
        self.gc = GarbageCollector(
            geometry, self.chip, self.mapping, self.allocator, gc_watermark
        )
        self.wear_leveler = WearLeveler(
            geometry, self.chip, self.mapping, self.allocator, wear_threshold
        )
        self.read_disturb_threshold = read_disturb_threshold
        self._block_read_counts: dict = {}
        # optional DFTL translation-page store (see attach_translation_store)
        self.translation_store = None
        self._dirty_translation_pages: set = set()
        self.translation_writeback_batch = 64
        self.stats = FtlStats()

    # -- logical operations ------------------------------------------------

    def translate(self, lpa: int, tee_id: int = PUBLIC_ID) -> int:
        """LPA→PPA with the ID-bit permission check (normal-world path)."""
        return self.mapping.lookup(lpa, tee_id).ppa

    def read(self, lpa: int, tee_id: int = PUBLIC_ID) -> FtlOpCost:
        """Read a logical page (permission-checked).

        Tracks per-block read counts: a block read past the disturb
        threshold is refreshed (valid pages relocated, block erased) to
        protect neighbouring cells, and the refresh cost is reported.
        """
        ppa = self.translate(lpa, tee_id)
        if self.chip.store_data:
            self.chip.read(ppa)
        self.stats.host_reads += 1
        cost = FtlOpCost(page_reads=1, ppa=ppa)
        block = self.geometry.block_of(ppa)
        self._block_read_counts[block] = self._block_read_counts.get(block, 0) + 1
        if self._block_read_counts[block] >= self.read_disturb_threshold:
            moved = self._refresh_block(block)
            cost.page_reads += moved
            cost.page_programs += moved
            cost.block_erases += 1
        return cost

    def _refresh_block(self, block: int) -> int:
        """Read-disturb refresh: rewrite valid pages, erase the block."""
        if self.allocator.is_active_block(block):
            self._block_read_counts[block] = 0
            return 0  # never refresh the block being filled
        moved = 0
        from repro.flash.chip import PageState

        for ppa in self.chip.pages_of_block(block):
            if self.chip.page_state(ppa) is not PageState.VALID:
                continue
            lpa = self.mapping.lpa_of_ppa(ppa)
            data = self.chip.read(ppa)
            new_ppa = self.allocator.allocate()
            self.chip.program(new_ppa, data if self.chip.store_data else None)
            self.chip.invalidate(ppa)
            if lpa is not None:
                self.mapping.update(lpa, new_ppa)
            moved += 1
        self.chip.erase(block)
        self.allocator.release_block(block)
        self._block_read_counts[block] = 0
        self.stats.disturb_refreshes += 1
        return moved

    def read_data(self, lpa: int, tee_id: int = PUBLIC_ID) -> Optional[bytes]:
        """Functional read returning stored bytes (functional mode only)."""
        ppa = self.translate(lpa, tee_id)
        self.stats.host_reads += 1
        return self.chip.read(ppa)

    def write(
        self,
        lpa: int,
        data: Optional[bytes] = None,
        owner: Optional[int] = None,
    ) -> FtlOpCost:
        """Out-of-place write of a logical page; may trigger GC + leveling.

        Returns the total physical cost including any GC relocations, so a
        single host write can cost many flash operations (write
        amplification).
        """
        if not 0 <= lpa < self.logical_pages:
            raise ValueError(f"LPA {lpa} out of range [0, {self.logical_pages})")
        cost = FtlOpCost()
        new_ppa = self.allocator.allocate()
        self.chip.program(new_ppa, data if self.chip.store_data else None)
        cost.page_programs += 1
        old_ppa = self.mapping.update(lpa, new_ppa, owner=owner)
        if old_ppa is not None:
            self.chip.invalidate(old_ppa)
        cost.ppa = new_ppa
        self.stats.host_writes += 1
        self._note_translation_dirty(lpa, cost)

        gc_total = GcResult()
        plane = self.geometry.plane_index(new_ppa)
        if self.gc.needs_gc(plane):
            gc_total.merge(self.gc.collect_plane(plane))
        if gc_total.blocks_erased:
            cost.page_reads += gc_total.pages_relocated
            cost.page_programs += gc_total.pages_relocated
            cost.block_erases += gc_total.blocks_erased
            cost.gc = gc_total
            self.stats.gc_relocations += gc_total.pages_relocated
            self.stats.gc_erases += gc_total.blocks_erased

        wl = self.wear_leveler.level()
        if wl.migrations:
            cost.page_reads += wl.pages_moved
            cost.page_programs += wl.pages_moved
            cost.block_erases += wl.migrations
            self.stats.wl_migrations += wl.migrations
        return cost

    def attach_translation_store(self, store) -> None:
        """Enable DFTL mode: translation pages live on flash (see
        :class:`~repro.ftl.translation_store.TranslationStore`)."""
        self.translation_store = store

    def _note_translation_dirty(self, lpa: int, cost: FtlOpCost) -> None:
        """Mapping updates dirty their translation page; dirty pages are
        written back in batches, and that flash traffic rides on the
        triggering host write's cost."""
        if self.translation_store is None:
            return
        self._dirty_translation_pages.add(self.translation_store.translation_page_of(lpa))
        if len(self._dirty_translation_pages) >= self.translation_writeback_batch:
            for tpage in sorted(self._dirty_translation_pages):
                self.translation_store.writeback(tpage)
                cost.page_programs += 1
            self._dirty_translation_pages.clear()

    def background_collect(self, soft_watermark: int = 4, max_blocks: int = 1) -> GcResult:
        """Idle-time GC: reclaim ahead of demand to avoid foreground stalls.

        Collects the emptiest victims in planes whose free-block count has
        fallen to ``soft_watermark`` (a level above the hard watermark that
        foreground writes trigger on). Bounded by ``max_blocks`` erases per
        call so idle work stays preemptible.
        """
        if soft_watermark <= self.gc.free_block_watermark:
            raise ValueError("soft watermark must exceed the foreground watermark")
        result = GcResult()
        for plane in range(self.geometry.total_planes):
            if result.blocks_erased >= max_blocks:
                break
            if self.allocator.free_blocks_in_plane(plane) > soft_watermark:
                continue
            victim = self.gc.pick_victim(plane)
            if victim is None:
                continue
            self.gc._reclaim(victim, plane, result)
        if result.blocks_erased:
            self.stats.background_collections += 1
            self.stats.gc_relocations += result.pages_relocated
            self.stats.gc_erases += result.blocks_erased
        return result

    def trim(self, lpa: int) -> None:
        """Discard a logical page's mapping and invalidate its flash page."""
        ppa = self.mapping.unmap(lpa)
        if ppa is not None:
            self.chip.invalidate(ppa)

    # -- bulk helpers -------------------------------------------------------

    def write_sequential(self, start_lpa: int, count: int, owner: Optional[int] = None) -> List[FtlOpCost]:
        """Write ``count`` consecutive logical pages (dataset population)."""
        return [self.write(start_lpa + i, owner=owner) for i in range(count)]

    def utilization(self) -> float:
        """Fraction of logical space currently mapped."""
        return len(self.mapping) / self.logical_pages
