"""FTL orchestrator: ties mapping, allocation, GC and wear leveling together.

The FTL is the secure-world component IceClave protects (§4.2). All methods
here are functional (they mutate chip/mapping state synchronously) and
return an :class:`FtlOpCost` describing the physical flash operations each
logical operation triggered, so the timing layer can charge them on the
discrete-event device.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.flash.chip import FlashChip
from repro.flash.ecc import EccModel, EccUncorrectableError, ReadRetryPolicy
from repro.flash.geometry import FlashGeometry
from repro.ftl.gc import GarbageCollector, GcResult
from repro.ftl.mapping import MappingTable, PUBLIC_ID
from repro.ftl.page_allocator import OutOfSpaceError, PageAllocator
from repro.ftl.wear_leveling import WearLeveler
from repro.sim.stats import ReliabilityStats


class WritesSuspendedError(Exception):
    """A write was refused because the device is in a degraded service mode.

    Raised by the timing layer (:class:`~repro.ftl.ssd_system.SsdSystem`)
    when a degradation ladder has taken the device to DEGRADED_READONLY or
    FAILSAFE; the host sees a *retryable* NVMe status, not data loss.
    """

    def __init__(self, mode: str) -> None:
        super().__init__(f"writes suspended: device is in {mode} mode")
        self.mode = mode


class MappingIntegrityError(Exception):
    """The FTL's mapping invariants do not hold (corruption detected).

    Raised by :meth:`Ftl.check_mapping_integrity` callers — most importantly
    the power-loss rebuild, which must fail loudly rather than hand the host
    a silently wrong address map. Carries the full problem list so reports
    and tests can show *which* invariant broke.
    """

    def __init__(self, where: str, problems: List[str]) -> None:
        detail = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        super().__init__(f"mapping integrity violated after {where}: {detail}{more}")
        self.where = where
        self.problems = problems


class UncorrectableReadError(Exception):
    """A logical read failed permanently (ECC exhausted or die gone).

    The mapping entry has already been dropped; callers translate this into
    an NVMe unrecovered-read-error status rather than crashing the device.
    """

    def __init__(self, lpa: int, ppa: int, reason: str) -> None:
        super().__init__(f"LPA {lpa} (PPA {ppa}) unreadable: {reason}")
        self.lpa = lpa
        self.ppa = ppa
        self.reason = reason


@dataclass
class RecoveryReport:
    """What one power-loss recovery pass rebuilt."""

    pages_scanned: int = 0
    mappings_recovered: int = 0
    stale_copies_discarded: int = 0
    translation_pages_scanned: int = 0
    scan_latency: float = 0.0


@dataclass
class FtlOpCost:
    """Physical flash work performed by one logical FTL operation."""

    page_reads: int = 0
    page_programs: int = 0
    block_erases: int = 0
    ppa: Optional[int] = None  # resulting physical page for read/write
    gc: Optional[GcResult] = None
    read_retries: int = 0
    remapped: bool = False
    added_latency: float = 0.0


@dataclass
class FtlStats:
    host_reads: int = 0
    host_writes: int = 0
    gc_relocations: int = 0
    gc_erases: int = 0
    wl_migrations: int = 0
    disturb_refreshes: int = 0
    background_collections: int = 0

    def snapshot_state(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def restore_state(self, state: Dict[str, int]) -> None:
        for f in fields(self):
            setattr(self, f.name, state[f.name])


class Ftl:
    """Page-level FTL with greedy GC and static wear leveling."""

    def __init__(
        self,
        geometry: FlashGeometry,
        chip: Optional[FlashChip] = None,
        overprovision: float = 0.125,
        gc_watermark: int = 2,
        wear_threshold: int = 16,
        read_disturb_threshold: int = 100_000,
    ) -> None:
        if not 0.0 < overprovision < 1.0:
            raise ValueError("overprovision must be in (0, 1)")
        if read_disturb_threshold < 1:
            raise ValueError("read_disturb_threshold must be >= 1")
        self.geometry = geometry
        self.chip = chip or FlashChip(geometry)
        # logical space excludes the over-provisioned area GC needs
        self.logical_pages = int(geometry.total_pages * (1.0 - overprovision))
        self.mapping = MappingTable(self.logical_pages)
        self.allocator = PageAllocator(geometry, self.chip)
        self.gc = GarbageCollector(
            geometry, self.chip, self.mapping, self.allocator, gc_watermark
        )
        self.wear_leveler = WearLeveler(
            geometry, self.chip, self.mapping, self.allocator, wear_threshold
        )
        self.read_disturb_threshold = read_disturb_threshold
        self._block_read_counts: dict = {}
        # optional DFTL translation-page store (see attach_translation_store)
        self.translation_store = None
        self._dirty_translation_pages: set = set()
        self.translation_writeback_batch = 64
        self.stats = FtlStats()
        # optional reliability machinery (see attach_reliability)
        self.ecc: Optional[EccModel] = None
        self.retry_policy: Optional[ReadRetryPolicy] = None  # repro: allow[recovery-unserialized-state] -- escalation schedule is pure configuration attached by attach_reliability, no mutable state
        self.reliability: Optional[ReliabilityStats] = None
        # modelled cost of scanning one page's OOB during recovery
        self.recovery_scan_latency_per_page = 25e-6
        # runtime invariant monitor (repro.recovery); None = disabled
        self.invariant_monitor = None  # repro: allow[recovery-unserialized-state] -- monitors are re-armed by their owner after restore, never serialized

    def attach_reliability(
        self,
        ecc: Optional[EccModel] = None,
        retry_policy: Optional[ReadRetryPolicy] = None,
        reliability: Optional[ReliabilityStats] = None,
    ) -> None:
        """Enable the fault-tolerant read path (:mod:`repro.faults`).

        With an :class:`EccModel` attached every read is decoded; initially
        uncorrectable pages go through the escalating ``retry_policy`` and,
        when recovered, are scrubbed to a fresh physical page
        (remap-on-uncorrectable). ``reliability`` collects the counters.
        """
        self.ecc = ecc
        self.retry_policy = retry_policy or ReadRetryPolicy()
        self.reliability = reliability or ReliabilityStats()

    # -- logical operations ------------------------------------------------

    def translate(self, lpa: int, tee_id: int = PUBLIC_ID) -> int:
        """LPA→PPA with the ID-bit permission check (normal-world path)."""
        return self.mapping.lookup(lpa, tee_id).ppa

    def read(self, lpa: int, tee_id: int = PUBLIC_ID) -> FtlOpCost:
        """Read a logical page (permission-checked).

        Tracks per-block read counts: a block read past the disturb
        threshold is refreshed (valid pages relocated, block erased) to
        protect neighbouring cells, and the refresh cost is reported.
        """
        ppa = self.translate(lpa, tee_id)
        cost = FtlOpCost(page_reads=1, ppa=ppa)
        if self.chip.failed_dies and self.chip.die_failed(ppa):
            # the die is gone and there is no redundancy: committed data on
            # it is lost. Drop the mapping so the host sees a stable error.
            self.mapping.unmap(lpa)
            if self.reliability is not None:
                self.reliability.faults_fatal += 1
            raise UncorrectableReadError(lpa, ppa, "die failure")
        if self.chip.store_data:
            self.chip.read(ppa)
        if self.ecc is not None:
            self._decode_read(lpa, ppa, cost)
        self.stats.host_reads += 1
        # disturb accounting charges the block whose cells were sensed (the
        # original page, even if the data was scrubbed elsewhere afterwards)
        block = self.geometry.block_of(ppa)
        self._block_read_counts[block] = self._block_read_counts.get(block, 0) + 1
        if self._block_read_counts[block] >= self.read_disturb_threshold:
            moved = self._refresh_block(block)
            cost.page_reads += moved
            cost.page_programs += moved
            cost.block_erases += 1
        return cost

    def _decode_read(self, lpa: int, ppa: int, cost: FtlOpCost) -> None:
        """ECC-decode a page read; retry, scrub, or fail permanently.

        - clean/correctable: errors fixed inline, nothing else happens;
        - initially uncorrectable but recovered by escalating read retries:
          the data is scrubbed to a fresh physical page so the weak cells
          leave service (remap-on-uncorrectable);
        - unrecoverable: the mapping entry is dropped and
          :class:`UncorrectableReadError` propagates to the host path.
        """
        rel = self.reliability
        wear = self.chip.wear_of(self.geometry.block_of(ppa))
        try:
            corrected = self.ecc.check_read(wear)
            if rel is not None:
                rel.errors_corrected += corrected
            return
        except EccUncorrectableError:
            pass
        try:
            outcome = self.retry_policy.recover(self.ecc)
        except EccUncorrectableError as exc:
            if rel is not None:
                rel.read_retries += self.retry_policy.max_retries
                rel.added_latency_s += self.retry_policy.worst_case_latency()
                rel.faults_fatal += 1
            self.mapping.unmap(lpa)
            self.chip.invalidate(ppa)
            raise UncorrectableReadError(lpa, ppa, str(exc)) from exc
        cost.read_retries = outcome.retries
        cost.page_reads += outcome.retries
        cost.added_latency += outcome.added_latency
        if rel is not None:
            rel.read_retries += outcome.retries
            rel.errors_corrected += outcome.corrected_bits
            rel.faults_recovered += 1
            rel.added_latency_s += outcome.added_latency
        new_ppa = self._remap(lpa, ppa)
        if new_ppa is not None:
            cost.page_programs += 1
            cost.remapped = True
            cost.ppa = new_ppa
            if rel is not None:
                rel.remaps += 1

    def _remap(self, lpa: int, ppa: int) -> Optional[int]:
        """Scrub a marginal page: rewrite its data at a fresh location."""
        entry = self.mapping.entry_unchecked(lpa)
        owner = entry.owner if entry is not None else PUBLIC_ID
        data = self.chip.read(ppa) if self.chip.store_data else None
        try:
            new_ppa = self.allocator.allocate()
        except OutOfSpaceError:
            return None  # keep serving from the marginal page; GC will help
        self.chip.program(new_ppa, data, lpa=lpa, owner=owner)
        self.chip.invalidate(ppa)
        self.mapping.update(lpa, new_ppa)
        return new_ppa

    # -- die failures ----------------------------------------------------------

    def quarantine_die(self, die: int, drop_mappings: bool = True) -> int:
        """Take a failed die out of service; returns mappings lost with it.

        The allocator stops placing data on the die's planes. With
        ``drop_mappings`` the committed pages stranded on the die are
        unmapped immediately (scan once, fail fast) instead of erroring
        lazily read-by-read.
        """
        ppd = self.geometry.planes_per_die
        self.allocator.quarantine_planes(range(die * ppd, (die + 1) * ppd))
        if not drop_mappings:
            return 0
        lost = [
            lpa
            for lpa, entry in list(self.mapping.items())
            if self.chip.die_of_ppa(entry.ppa) == die
        ]
        for lpa in lost:
            self.mapping.unmap(lpa)
        return len(lost)

    # -- invariants --------------------------------------------------------------

    def check_mapping_integrity(self, where: str = "") -> List[str]:
        """Verify the mapping invariants; return a list of problems (empty = OK).

        Checked invariants (the address-map half of the recovery story):

        - **bijectivity** — the LPA→PPA map is injective and its reverse
          index agrees with it in both directions;
        - **media state** — every mapped PPA is a VALID flash page (pages on
          failed dies are exempt: their mappings are dropped lazily);
        - **OOB agreement** — the on-flash journal (LPA + owner in each
          page's OOB) matches the DRAM mapping it would be rebuilt from;
        - **valid-page accounting** — every VALID data page is reachable
          from the mapping (no leaked/orphaned valid pages), translation
          blocks excluded.

        Pure read-only check; callers decide whether problems are fatal
        (power-loss rebuild raises :class:`MappingIntegrityError`, the
        invariant monitors raise ``InvariantViolation``).
        """
        from repro.flash.chip import PageState

        problems: List[str] = []
        mapped_ppas: Dict[int, int] = {}
        for lpa, entry in self.mapping.items():
            ppa = entry.ppa
            if ppa in mapped_ppas:
                problems.append(
                    f"LPA {lpa} and LPA {mapped_ppas[ppa]} both map to PPA {ppa}"
                )
                continue
            mapped_ppas[ppa] = lpa
            back = self.mapping.lpa_of_ppa(ppa)
            if back != lpa:
                problems.append(
                    f"reverse map disagrees: LPA {lpa} -> PPA {ppa} -> LPA {back}"
                )
            if self.chip.failed_dies and self.chip.die_failed(ppa):
                continue  # stranded mapping; dropped lazily on first read
            state = self.chip.page_state(ppa)
            if state is not PageState.VALID:
                problems.append(f"LPA {lpa} maps to PPA {ppa} in state {state.name}")
                continue
            oob = self.chip.oob_of(ppa)
            if oob is None:
                problems.append(f"mapped PPA {ppa} has no OOB journal entry")
            else:
                if oob.lpa != lpa:
                    problems.append(
                        f"OOB of PPA {ppa} names LPA {oob.lpa}, mapping says {lpa}"
                    )
                if oob.owner != entry.owner:
                    problems.append(
                        f"OOB owner {oob.owner} != mapping owner {entry.owner} "
                        f"for LPA {lpa} (PPA {ppa})"
                    )
        reserved = set(self.translation_store.blocks) if self.translation_store else set()
        for block in range(self.geometry.total_blocks):
            if block in reserved or self.chip.block_on_failed_die(block):
                continue
            if self.chip.write_cursor(block) == 0:
                continue
            for ppa in self.chip.pages_of_block(block):
                if self.chip.page_state(ppa) is not PageState.VALID:
                    continue
                if ppa not in mapped_ppas:
                    oob = self.chip.oob_of(ppa)
                    lpa = oob.lpa if oob is not None else None
                    problems.append(
                        f"orphaned VALID page at PPA {ppa} (OOB LPA {lpa}) "
                        "not reachable from the mapping"
                    )
        if problems and where:
            problems = [f"[{where}] {p}" for p in problems]
        return problems

    # -- power loss --------------------------------------------------------------

    def recover_from_power_loss(self) -> RecoveryReport:
        """Rebuild every DRAM-resident structure after a power cut.

        The mapping table, read-disturb counts, dirty-translation set and
        allocator cursors all live in (lost) SSD DRAM. Flash state survives,
        and every data page's OOB area names its LPA, owner and a monotonic
        write sequence number — so the mapping is rebuilt by journal replay:
        scan all surviving pages, keep the newest copy of each LPA, and
        invalidate stale duplicates a power cut mid-GC may have left behind.
        With a DFTL store attached its GTD is recovered the same way
        (:meth:`~repro.ftl.translation_store.TranslationStore.recover`).
        """
        report = RecoveryReport()
        self._block_read_counts.clear()
        self._dirty_translation_pages.clear()
        self.mapping.clear()
        from repro.flash.chip import PageState

        best: Dict[int, Tuple[int, int, int]] = {}  # lpa -> (seq, ppa, owner)
        stale: List[int] = []
        reserved = set(self.translation_store.blocks) if self.translation_store else set()
        for block in range(self.geometry.total_blocks):
            if block in reserved or self.chip.block_on_failed_die(block):
                continue
            if self.chip.write_cursor(block) == 0:
                continue  # pristine block: nothing to scan
            for ppa in self.chip.pages_of_block(block):
                if self.chip.page_state(ppa) is not PageState.VALID:
                    continue
                oob = self.chip.oob_of(ppa)
                report.pages_scanned += 1
                if oob is None or not 0 <= oob.lpa < self.logical_pages:
                    continue
                prev = best.get(oob.lpa)
                if prev is None or oob.seq > prev[0]:
                    if prev is not None:
                        stale.append(prev[1])
                    best[oob.lpa] = (oob.seq, ppa, oob.owner)
                else:
                    stale.append(ppa)
        for ppa in stale:
            self.chip.invalidate(ppa)
        for lpa, (_, ppa, owner) in best.items():
            self.mapping.update(lpa, ppa, owner=owner)
        report.mappings_recovered = len(best)
        report.stale_copies_discarded = len(stale)
        self.allocator.rebuild_from_chip(exclude_blocks=reserved)
        if self.translation_store is not None:
            report.translation_pages_scanned = self.translation_store.recover()
        report.scan_latency = report.pages_scanned * self.recovery_scan_latency_per_page
        # the rebuilt map must satisfy the bijectivity/accounting invariants;
        # a recovery that produced a corrupt map fails loudly (structured
        # error + reliability counter) instead of serving wrong addresses
        problems = self.check_mapping_integrity("power-loss recovery")
        monitor = self.invariant_monitor
        if monitor is not None:
            monitor.note_ftl_check(self, problems)
        if problems:
            if self.reliability is not None:
                self.reliability.recovery_integrity_failures += 1
            raise MappingIntegrityError("power-loss recovery", problems)
        if self.reliability is not None:
            self.reliability.power_loss_recoveries += 1
            self.reliability.faults_recovered += 1
            self.reliability.added_latency_s += report.scan_latency
        return report

    def _refresh_block(self, block: int) -> int:
        """Read-disturb refresh: rewrite valid pages, erase the block."""
        if self.allocator.is_active_block(block):
            self._block_read_counts[block] = 0
            return 0  # never refresh the block being filled
        moved = 0
        from repro.flash.chip import PageState

        for ppa in self.chip.pages_of_block(block):
            if self.chip.page_state(ppa) is not PageState.VALID:
                continue
            lpa = self.mapping.lpa_of_ppa(ppa)
            data = self.chip.read(ppa)
            new_ppa = self.allocator.allocate()
            old_oob = self.chip.oob_of(ppa)
            self.chip.program(
                new_ppa,
                data if self.chip.store_data else None,
                lpa=lpa,
                owner=old_oob.owner if old_oob is not None else PUBLIC_ID,
            )
            self.chip.invalidate(ppa)
            if lpa is not None:
                self.mapping.update(lpa, new_ppa)
            moved += 1
        self.chip.erase(block)
        self.allocator.release_block(block)
        self._block_read_counts[block] = 0
        self.stats.disturb_refreshes += 1
        return moved

    def read_data(self, lpa: int, tee_id: int = PUBLIC_ID) -> Optional[bytes]:
        """Functional read returning stored bytes (functional mode only)."""
        ppa = self.translate(lpa, tee_id)
        self.stats.host_reads += 1
        return self.chip.read(ppa)

    def write(
        self,
        lpa: int,
        data: Optional[bytes] = None,
        owner: Optional[int] = None,
    ) -> FtlOpCost:
        """Out-of-place write of a logical page; may trigger GC + leveling.

        Returns the total physical cost including any GC relocations, so a
        single host write can cost many flash operations (write
        amplification).
        """
        if not 0 <= lpa < self.logical_pages:
            raise ValueError(f"LPA {lpa} out of range [0, {self.logical_pages})")
        cost = FtlOpCost()
        new_ppa = self.allocator.allocate()
        prev = self.mapping.entry_unchecked(lpa)
        oob_owner = owner if owner is not None else (prev.owner if prev else PUBLIC_ID)
        self.chip.program(
            new_ppa, data if self.chip.store_data else None, lpa=lpa, owner=oob_owner
        )
        cost.page_programs += 1
        old_ppa = self.mapping.update(lpa, new_ppa, owner=owner)
        if old_ppa is not None:
            self.chip.invalidate(old_ppa)
        cost.ppa = new_ppa
        self.stats.host_writes += 1
        self._note_translation_dirty(lpa, cost)

        gc_total = GcResult()
        plane = self.geometry.plane_index(new_ppa)
        if self.gc.needs_gc(plane):
            gc_total.merge(self.gc.collect_plane(plane))
        monitor = self.invariant_monitor
        if gc_total.blocks_erased:
            cost.page_reads += gc_total.pages_relocated
            cost.page_programs += gc_total.pages_relocated
            cost.block_erases += gc_total.blocks_erased
            cost.gc = gc_total
            self.stats.gc_relocations += gc_total.pages_relocated
            self.stats.gc_erases += gc_total.blocks_erased
            if monitor is not None:
                monitor.after_ftl_step(self, "gc")

        wl = self.wear_leveler.level()
        if wl.migrations:
            cost.page_reads += wl.pages_moved
            cost.page_programs += wl.pages_moved
            cost.block_erases += wl.migrations
            self.stats.wl_migrations += wl.migrations
            if monitor is not None:
                monitor.after_ftl_step(self, "wear_level")
        return cost

    def attach_translation_store(self, store) -> None:
        """Enable DFTL mode: translation pages live on flash (see
        :class:`~repro.ftl.translation_store.TranslationStore`)."""
        self.translation_store = store

    def _note_translation_dirty(self, lpa: int, cost: FtlOpCost) -> None:
        """Mapping updates dirty their translation page; dirty pages are
        written back in batches, and that flash traffic rides on the
        triggering host write's cost."""
        if self.translation_store is None:
            return
        self._dirty_translation_pages.add(self.translation_store.translation_page_of(lpa))
        if len(self._dirty_translation_pages) >= self.translation_writeback_batch:
            for tpage in sorted(self._dirty_translation_pages):
                self.translation_store.writeback(tpage)
                cost.page_programs += 1
            self._dirty_translation_pages.clear()

    def background_collect(self, soft_watermark: int = 4, max_blocks: int = 1) -> GcResult:
        """Idle-time GC: reclaim ahead of demand to avoid foreground stalls.

        Collects the emptiest victims in planes whose free-block count has
        fallen to ``soft_watermark`` (a level above the hard watermark that
        foreground writes trigger on). Bounded by ``max_blocks`` erases per
        call so idle work stays preemptible.
        """
        if soft_watermark <= self.gc.free_block_watermark:
            raise ValueError("soft watermark must exceed the foreground watermark")
        result = GcResult()
        for plane in range(self.geometry.total_planes):
            if result.blocks_erased >= max_blocks:
                break
            if self.allocator.free_blocks_in_plane(plane) > soft_watermark:
                continue
            victim = self.gc.pick_victim(plane)
            if victim is None:
                continue
            self.gc._reclaim(victim, plane, result)
        if result.blocks_erased:
            self.stats.background_collections += 1
            self.stats.gc_relocations += result.pages_relocated
            self.stats.gc_erases += result.blocks_erased
        return result

    def trim(self, lpa: int) -> None:
        """Discard a logical page's mapping and invalidate its flash page."""
        ppa = self.mapping.unmap(lpa)
        if ppa is not None:
            self.chip.invalidate(ppa)

    # -- bulk helpers -------------------------------------------------------

    def write_sequential(self, start_lpa: int, count: int, owner: Optional[int] = None) -> List[FtlOpCost]:
        """Write ``count`` consecutive logical pages (dataset population)."""
        return [self.write(start_lpa + i, owner=owner) for i in range(count)]

    def utilization(self) -> float:
        """Fraction of logical space currently mapped."""
        return len(self.mapping) / self.logical_pages

    # -- checkpoint/restore -------------------------------------------------

    def snapshot_state(self) -> dict:
        """Whole-FTL state: media, map, allocator, collectors and counters.

        DFTL mode is excluded by design: translation pages already live on
        flash and are rebuilt by ``translation_store.recover()``, so a
        checkpoint of that configuration would duplicate (and could
        contradict) the on-media journal.
        """
        if self.translation_store is not None:
            raise RuntimeError(
                "cannot snapshot an FTL with an attached translation store; "
                "DFTL state is rebuilt from flash by its own recover() path"
            )
        return {
            "chip": self.chip.snapshot_state(),
            "mapping": self.mapping.snapshot_state(),
            "allocator": self.allocator.snapshot_state(),
            "gc": self.gc.snapshot_state(),
            "wear_leveler": self.wear_leveler.snapshot_state(),
            "stats": self.stats.snapshot_state(),
            "block_read_counts": sorted(self._block_read_counts.items()),
            "dirty_translation_pages": sorted(self._dirty_translation_pages),
            "translation_writeback_batch": self.translation_writeback_batch,
            "recovery_scan_latency_per_page": self.recovery_scan_latency_per_page,
            "ecc": self.ecc.snapshot_state() if self.ecc is not None else None,
            "reliability": (
                self.reliability.snapshot_state() if self.reliability is not None else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        self.chip.restore_state(state["chip"])
        self.mapping.restore_state(state["mapping"])
        self.allocator.restore_state(state["allocator"])
        self.gc.restore_state(state["gc"])
        self.wear_leveler.restore_state(state["wear_leveler"])
        self.stats.restore_state(state["stats"])
        self._block_read_counts = {block: count for block, count in state["block_read_counts"]}
        self._dirty_translation_pages = set(state["dirty_translation_pages"])
        self.translation_writeback_batch = state["translation_writeback_batch"]
        self.recovery_scan_latency_per_page = state["recovery_scan_latency_per_page"]
        if state["ecc"] is not None:
            if self.ecc is None:
                raise RuntimeError("snapshot carries ECC state but no EccModel is attached")
            self.ecc.restore_state(state["ecc"])
        if state["reliability"] is not None:
            if self.reliability is None:
                raise RuntimeError(
                    "snapshot carries reliability counters but none are attached"
                )
            self.reliability.restore_state(state["reliability"])
