"""Greedy garbage collection (§2.1).

When a plane's free-block count falls below a watermark, GC picks the block
with the fewest valid pages (greedy victim selection), relocates the valid
pages to freshly allocated ones, updates the mapping table, erases the
victim, and returns it to the allocator. Relocation costs are reported so
the timing layer can charge flash reads/programs/erases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.flash.chip import FlashChip, PageState
from repro.flash.geometry import FlashGeometry
from repro.ftl.mapping import MappingTable
from repro.ftl.page_allocator import PageAllocator


@dataclass
class GcResult:
    """What one GC invocation did (for timing + tests)."""

    victims: List[int] = field(default_factory=list)
    relocated: List[tuple] = field(default_factory=list)  # (old_ppa, new_ppa)
    pages_relocated: int = 0
    blocks_erased: int = 0

    def merge(self, other: "GcResult") -> None:
        self.victims.extend(other.victims)
        self.relocated.extend(other.relocated)
        self.pages_relocated += other.pages_relocated
        self.blocks_erased += other.blocks_erased


class GarbageCollector:
    """Greedy per-plane garbage collector."""

    def __init__(
        self,
        geometry: FlashGeometry,
        chip: FlashChip,
        mapping: MappingTable,
        allocator: PageAllocator,
        free_block_watermark: int = 2,
    ) -> None:
        if free_block_watermark < 1:
            raise ValueError("watermark must be >= 1")
        self.geometry = geometry
        self.chip = chip
        self.mapping = mapping
        self.allocator = allocator
        self.free_block_watermark = free_block_watermark
        self.invocations = 0
        self.total_relocations = 0
        self.total_erases = 0
        # fault-injection hook (repro.faults): called at the labelled points
        # inside _reclaim so a power cut can land mid-collection
        self.fault_hook = None  # repro: allow[recovery-unserialized-state] -- rewired by the fault injector after restore, never serialized

    def needs_gc(self, plane: int) -> bool:
        return self.allocator.free_blocks_in_plane(plane) <= self.free_block_watermark

    def pick_victim(self, plane: int) -> Optional[int]:
        """Greedy choice: fewest valid pages, ties broken toward least wear.

        The wear tie-break matters: under small hot working sets many blocks
        are fully invalid, and always reclaiming the lowest-indexed one would
        starve the others, defeating wear leveling.
        """
        base = plane * self.geometry.blocks_per_plane
        best_block = None
        best_key = None
        for block in range(base, base + self.geometry.blocks_per_plane):
            if self._is_free_or_active(block, plane):
                continue
            key = (self.chip.valid_pages_in_block(block), self.chip.wear_of(block))
            if best_key is None or key < best_key:
                best_key = key
                best_block = block
        return best_block

    def _is_free_or_active(self, block: int, plane: int) -> bool:
        # a block with write cursor 0 and no valid/invalid pages is free
        pages = self.chip.pages_of_block(block)
        if self.allocator._active_block[plane] == block:
            return True
        return all(self.chip.page_state(p) is PageState.FREE for p in pages)

    def collect_plane(self, plane: int) -> GcResult:
        """Run GC on one plane until it is back above the watermark."""
        result = GcResult()
        guard = self.geometry.blocks_per_plane  # never loop more than once around
        while self.needs_gc(plane) and guard > 0:
            guard -= 1
            victim = self.pick_victim(plane)
            if victim is None:
                break
            self._reclaim(victim, plane, result)
        if result.blocks_erased:
            self.invocations += 1
        return result

    def _reclaim(self, victim: int, plane: int, result: GcResult) -> None:
        moved = 0
        for ppa in self.chip.pages_of_block(victim):
            if self.chip.page_state(ppa) is not PageState.VALID:
                continue
            lpa = self.mapping.lpa_of_ppa(ppa)
            data = self.chip.read(ppa)
            # allocate on a different plane if this one is exhausted
            new_ppa = self.allocator.allocate()
            old_oob = self.chip.oob_of(ppa)
            self.chip.program(
                new_ppa,
                data if self.chip.store_data else None,
                lpa=lpa,
                owner=old_oob.owner if old_oob is not None else 0,
            )
            if self.fault_hook is not None:
                # both copies are VALID right now; a power cut here leaves a
                # duplicate that recovery must resolve by sequence number
                self.fault_hook("gc_mid_relocate")
            self.chip.invalidate(ppa)
            if lpa is not None:
                self.mapping.update(lpa, new_ppa)
            result.relocated.append((ppa, new_ppa))
            moved += 1
            if self.fault_hook is not None:
                self.fault_hook("gc_relocate")
        if self.fault_hook is not None:
            self.fault_hook("gc_pre_erase")
        self.chip.erase(victim)
        self.allocator.release_block(victim)
        result.victims.append(victim)
        result.pages_relocated += moved
        result.blocks_erased += 1
        self.total_relocations += moved
        self.total_erases += 1

    def write_amplification(self, host_writes: int) -> float:
        """WA = (host + relocated) / host writes."""
        if host_writes <= 0:
            return 1.0
        return (host_writes + self.total_relocations) / host_writes

    # -- checkpoint/restore ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Counters only: chip/mapping/allocator are snapshotted by their owner.

        ``fault_hook`` is rewired by the fault injector after restore, never
        serialized.
        """
        return {
            "invocations": self.invocations,
            "total_relocations": self.total_relocations,
            "total_erases": self.total_erases,
        }

    def restore_state(self, state: dict) -> None:
        self.invocations = state["invocations"]
        self.total_relocations = state["total_relocations"]
        self.total_erases = state["total_erases"]
