"""Static wear leveling (§2.1).

Flash blocks endure a bounded number of program/erase cycles; the FTL must
age blocks uniformly. This implements threshold-triggered static wear
leveling: when the wear gap between the most- and least-worn blocks exceeds
``threshold``, the coldest block's data is migrated into a worn free block
so the cold block (young, rarely erased) re-enters circulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.flash.chip import FlashChip, PageState
from repro.flash.geometry import FlashGeometry
from repro.ftl.mapping import MappingTable
from repro.ftl.page_allocator import PageAllocator


@dataclass
class WearLevelResult:
    migrations: int = 0
    pages_moved: int = 0


class WearLeveler:
    """Threshold-based static wear leveling."""

    def __init__(
        self,
        geometry: FlashGeometry,
        chip: FlashChip,
        mapping: MappingTable,
        allocator: PageAllocator,
        threshold: int = 16,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.geometry = geometry
        self.chip = chip
        self.mapping = mapping
        self.allocator = allocator
        self.threshold = threshold
        self.total_migrations = 0

    def wear_stats(self) -> Tuple[int, int, float]:
        """(min, max, mean) wear over all blocks (unworn blocks count as 0)."""
        total_blocks = self.geometry.total_blocks
        worn = self.chip.block_wear
        if not worn:
            return (0, 0, 0.0)
        max_wear = max(worn.values())
        min_wear = min(worn.values()) if len(worn) == total_blocks else 0
        mean = sum(worn.values()) / total_blocks
        return (min_wear, max_wear, mean)

    def needs_leveling(self) -> bool:
        min_wear, max_wear, _ = self.wear_stats()
        return (max_wear - min_wear) > self.threshold

    def coldest_occupied_block(self) -> Optional[int]:
        """The least-worn block that currently holds valid data."""
        best = None
        best_wear = None
        for block in range(self.geometry.total_blocks):
            if self.chip.block_on_failed_die(block):
                continue  # unreadable and unerasable; nothing to level
            if self.chip.valid_pages_in_block(block) == 0:
                continue
            if self.allocator.is_active_block(block):
                continue  # never migrate the block currently being filled
            wear = self.chip.wear_of(block)
            if best_wear is None or wear < best_wear:
                best_wear = wear
                best = block
        return best

    def level(self) -> WearLevelResult:
        """Perform one leveling pass if the wear gap exceeds the threshold.

        Migrates the coldest occupied block's valid pages to fresh pages and
        erases it, bringing it back into the free pool where (being young)
        the wear-aware allocator will favour it.
        """
        result = WearLevelResult()
        if not self.needs_leveling():
            return result
        cold = self.coldest_occupied_block()
        if cold is None:
            return result
        moved = 0
        for ppa in self.chip.pages_of_block(cold):
            if self.chip.page_state(ppa) is not PageState.VALID:
                continue
            lpa = self.mapping.lpa_of_ppa(ppa)
            data = self.chip.read(ppa)
            new_ppa = self.allocator.allocate()
            old_oob = self.chip.oob_of(ppa)
            self.chip.program(
                new_ppa,
                data if self.chip.store_data else None,
                lpa=lpa,
                owner=old_oob.owner if old_oob is not None else 0,
            )
            self.chip.invalidate(ppa)
            if lpa is not None:
                self.mapping.update(lpa, new_ppa)
            moved += 1
        self.chip.erase(cold)
        self.allocator.release_block(cold)
        result.migrations = 1
        result.pages_moved = moved
        self.total_migrations += 1
        return result

    # -- checkpoint/restore ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Counters only: chip/mapping/allocator are snapshotted by their owner."""
        return {"total_migrations": self.total_migrations}

    def restore_state(self, state: dict) -> None:
        self.total_migrations = state["total_migrations"]

    def wear_histogram(self, bins: int = 10) -> List[int]:
        """Histogram of per-block wear; handy for uniformity assertions."""
        _, max_wear, _ = self.wear_stats()
        counts = [0] * bins
        width = max(1, (max_wear + 1 + bins - 1) // bins)
        for block in range(self.geometry.total_blocks):
            wear = self.chip.wear_of(block)
            counts[min(bins - 1, wear // width)] += 1
        return counts
