"""The ``REPRO_SPEED`` switch: batched / compiled fast-path selection.

Every fast path in the tree is *fingerprint-identical* to the plain code it
replaces — same event counts, same float accumulations bit for bit, same
snapshots. This module only decides which implementation runs:

- ``REPRO_SPEED=off``      — plain per-event code everywhere (the reference).
- ``REPRO_SPEED=python``   — batched pure-python kernels (the default).
- ``REPRO_SPEED=compiled`` — additionally use the C kernels from
  ``tools/speedc.c`` when the shared library has been built (see
  ``tools/build_speed.py``); falls back to the python kernels per call
  when it has not. Nothing here ever changes results, so falling back is
  always safe.

The compiled library is looked up at ``$REPRO_SPEED_LIB`` first, then at
``<repo>/build/speedc.so``. Loading is lazy and cached; a missing or
unloadable library simply disables the compiled kernels.
"""

from __future__ import annotations

import ctypes
import os
import pathlib
from typing import Optional, Tuple

MODES = ("off", "python", "compiled")
_DEFAULT_MODE = "python"

# one-shot caches; reload() resets them (tests flip the env var mid-process)
_mode_cache: Optional[str] = None
_lib_cache: Optional[ctypes.CDLL] = None
_lib_tried = False


def default_lib_path() -> pathlib.Path:
    """Where ``tools/build_speed.py`` drops the shared library."""
    return pathlib.Path(__file__).resolve().parents[2] / "build" / "speedc.so"


def mode() -> str:
    """The active fast-path mode, parsed once from ``REPRO_SPEED``."""
    global _mode_cache
    if _mode_cache is None:
        raw = os.environ.get("REPRO_SPEED", _DEFAULT_MODE).strip().lower()
        _mode_cache = raw if raw in MODES else _DEFAULT_MODE
    return _mode_cache


def batch_enabled() -> bool:
    """True when the batched (python or compiled) kernels may run."""
    return mode() != "off"


def compiled_requested() -> bool:
    return mode() == "compiled"


def reload() -> str:
    """Re-read ``REPRO_SPEED`` and drop the library cache (for tests)."""
    global _mode_cache, _lib_cache, _lib_tried
    _mode_cache = None
    _lib_cache = None
    _lib_tried = False
    return mode()


def _load_lib() -> Optional[ctypes.CDLL]:
    global _lib_cache, _lib_tried
    if _lib_tried:
        return _lib_cache
    _lib_tried = True
    candidates = []
    env_path = os.environ.get("REPRO_SPEED_LIB")
    if env_path:
        candidates.append(pathlib.Path(env_path))
    candidates.append(default_lib_path())
    for path in candidates:
        if not path.is_file():
            continue
        try:
            lib = ctypes.CDLL(str(path))
        except OSError:
            continue
        try:
            lib.repro_trivium_blocks.restype = None
            lib.repro_storm_read.restype = ctypes.c_int
        except AttributeError:
            continue  # stale/foreign library: missing entry points
        _lib_cache = lib
        return lib
    return None


def lib() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or None (wrong mode / not built)."""
    if not compiled_requested():
        return None
    return _load_lib()


def compiled_available() -> bool:
    return lib() is not None


def describe() -> dict:
    """Diagnostic summary (surfaced by ``repro bench`` payloads)."""
    return {
        "mode": mode(),
        "compiled_loaded": compiled_available(),
        "lib_path": str(default_lib_path()),
    }


# -- compiled kernel wrappers --------------------------------------------------


def trivium_blocks(a: int, b: int, c: int, nblocks: int) -> Optional[Tuple[bytes, int, int, int]]:
    """Advance a word-parallel Trivium state ``nblocks`` x 64 clocks in C.

    ``a``/``b``/``c`` are the oldest-bit-first shift registers of
    :class:`repro.crypto.trivium_fast.TriviumFast` (93/84/111 bits, passed
    as ints). Returns ``(keystream, a', b', c')`` — byte-identical to
    ``nblocks`` calls of the python ``_block`` — or None when the compiled
    path is unavailable.
    """
    library = lib()
    if library is None or nblocks <= 0:
        return None
    out = ctypes.create_string_buffer(nblocks * 8)
    state_out = ctypes.create_string_buffer(48)
    library.repro_trivium_blocks(
        a.to_bytes(16, "little"),
        b.to_bytes(16, "little"),
        c.to_bytes(16, "little"),
        ctypes.c_uint64(nblocks),
        out,
        state_out,
    )
    raw = state_out.raw
    return (
        out.raw,
        int.from_bytes(raw[0:16], "little"),
        int.from_bytes(raw[16:32], "little"),
        int.from_bytes(raw[32:48], "little"),
    )
