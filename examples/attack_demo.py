#!/usr/bin/env python3
"""Attack demo: the three §3 threat-model attacks, and how IceClave stops them.

Everything here is *functional*: real permission-checked mapping tables,
real MMU region checks, real Trivium ciphertext on the bus, real AES OTPs
and a real Bonsai Merkle tree in DRAM. Each attack is mounted and shown to
be blocked.
"""

from repro.core import (
    AccessType,
    IceClaveConfig,
    IceClaveRuntime,
    IntegrityError,
    MMUFault,
    StreamCipherEngine,
    TeeAbort,
    World,
)
from repro.core.config import MIB
from repro.core.mee import FunctionalMee
from repro.flash import FlashChip
from repro.flash.geometry import small_geometry
from repro.ftl import Ftl
from repro.host import IceClaveLibrary


def build_ssd():
    geo = small_geometry()
    ftl = Ftl(geo, chip=FlashChip(geo, store_data=True))
    config = IceClaveConfig(
        dram_bytes=512 * MIB,
        protected_region_bytes=8 * MIB,
        secure_region_bytes=8 * MIB,
        tee_preallocation_bytes=4 * MIB,
    )
    runtime = IceClaveRuntime(ftl, config=config)
    return ftl, runtime, IceClaveLibrary(runtime)


def attack_1_cross_tee_data_theft(ftl, runtime, lib) -> None:
    print("== Attack 1: steal a co-located tenant's data (§4.3) ==")
    # victim stores data and offloads a program over LPAs 0-7
    for lpa in range(8):
        ftl.write(lpa, f"victim-secret-{lpa}".encode())
    victim = lib.offload_code(b"\x90" * 128, lpas=list(range(8)))
    # attacker offloads its own program over LPA 8 and probes the victim's
    for lpa in [8]:
        ftl.write(lpa, b"attacker data")
    attacker = lib.offload_code(b"\x90" * 128, lpas=[8])
    print(f"  victim TEE id={victim.tee.eid}, attacker TEE id={attacker.tee.eid}")
    try:
        runtime.read_mapping_entry(attacker.tee, 0)  # brute-force probe
        raise AssertionError("attack unexpectedly succeeded!")
    except TeeAbort as abort:
        print(f"  BLOCKED: {abort}")
        print(f"  attacker TEE state: {attacker.tee.state.value} (ThrowOutTEE fired)")
    lib.execute(victim, lambda tee: b"victim unaffected")
    print(f"  victim result: {lib.get_result(victim.tid).decode()}\n")


def attack_2_mangle_ftl(runtime) -> None:
    print("== Attack 2: overwrite the FTL mapping table / GC state (§4.2) ==")
    space = runtime.address_space
    mapping_table_addr = space.protected_range.start  # cached mapping table
    ftl_code_addr = space.secure_range.start  # FTL + IceClave runtime
    for label, addr in (("mapping table", mapping_table_addr), ("FTL code", ftl_code_addr)):
        try:
            space.check(addr, World.NORMAL, AccessType.WRITE, tee_id=1)
            raise AssertionError("attack unexpectedly succeeded!")
        except MMUFault as fault:
            print(f"  write to {label}: BLOCKED ({fault})")
    # the normal world can still *read* the mapping table for translation
    space.check(mapping_table_addr, World.NORMAL, AccessType.READ, tee_id=1)
    print("  read of mapping table from normal world: allowed (no world switch)\n")


def attack_3_bus_snooping(ftl) -> None:
    print("== Attack 3: snoop the flash->DRAM bus (§4.4, §5) ==")
    engine = StreamCipherEngine(key=b"secure-key")
    secret = b"SSN=078-05-1120 balance=$1,000,000" + bytes(4096 - 35)
    ppa = ftl.write(100, secret).ppa
    iv, on_the_bus = engine.encrypt_page(ppa, secret)
    assert on_the_bus != secret and b"SSN" not in on_the_bus
    print(f"  plaintext head : {secret[:24]!r}")
    print(f"  bus observes   : {on_the_bus[:24]!r}  (Trivium ciphertext)")
    print(f"  TEE deciphers  : {engine.decrypt_page(iv, on_the_bus)[:24]!r}")
    iv2, second = engine.encrypt_page(ppa, secret)
    print(f"  same page re-read -> different IV/ciphertext: {on_the_bus != second}\n")


def attack_4_dram_tamper_and_replay() -> None:
    print("== Attack 4: tamper with / replay SSD DRAM contents (§4.4) ==")
    mee = FunctionalMee(pages=8, aes_key=b"0123456789abcdef", mac_key=b"mac-key")
    mee.write_line(0, 0, b"intermediate result v1" + bytes(42))
    # cold-boot style tamper: flip a ciphertext bit in DRAM
    ct = bytearray(mee.dram_ciphertext[(0, 0)])
    ct[5] ^= 0x80
    mee.dram_ciphertext[(0, 0)] = bytes(ct)
    try:
        mee.read_line(0, 0)
        raise AssertionError("tamper undetected!")
    except IntegrityError as err:
        print(f"  bit-flip in DRAM: DETECTED ({err})")
    # replay: restore a perfectly valid but stale (ciphertext, MAC) snapshot
    mee2 = FunctionalMee(pages=8, aes_key=b"0123456789abcdef", mac_key=b"mac-key")
    mee2.write_line(1, 0, b"balance = $100" + bytes(50))
    stale = (mee2.dram_ciphertext[(1, 0)], mee2.dram_macs[(1, 0)])
    mee2.write_line(1, 0, b"balance = $0  " + bytes(50))
    mee2.dram_ciphertext[(1, 0)], mee2.dram_macs[(1, 0)] = stale
    try:
        mee2.read_line(1, 0)
        raise AssertionError("replay undetected!")
    except IntegrityError:
        print("  replay of stale snapshot: DETECTED (Bonsai Merkle tree root is on-chip)\n")


def main() -> None:
    ftl, runtime, lib = build_ssd()
    attack_1_cross_tee_data_theft(ftl, runtime, lib)
    attack_2_mangle_ftl(runtime)
    attack_3_bus_snooping(ftl)
    attack_4_dram_tamper_and_replay()
    print("All attacks of the threat model were blocked.")


if __name__ == "__main__":
    main()
