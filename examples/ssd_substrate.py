#!/usr/bin/env python3
"""Inside the SSD: the substrate IceClave protects.

Drives the FTL + event-driven flash stack directly to show what the
secure-world flash management actually does — and why a malicious program
that could intervene in it (attack 2 of the threat model) would be so
damaging: garbage collection moves live data around constantly, and wear
leveling decides which blocks survive.
"""

from repro.flash.geometry import small_geometry
from repro.flash.traces import TraceConfig, sequential_write, zipf_write
from repro.ftl.ssd_system import SsdSystem


def main() -> None:
    geometry = small_geometry(channels=4, chips_per_channel=2, dies_per_chip=1,
                              planes_per_die=2, blocks_per_plane=16,
                              pages_per_block=16)
    ssd = SsdSystem(geometry=geometry, store_data=True)
    pages = ssd.ftl.logical_pages // 2

    print("== populate: sequential writes ==")
    for op, lpa in sequential_write(TraceConfig(logical_pages=pages, length=pages)):
        ssd.write(lpa, data=f"record-{lpa}".encode())
    ssd.run_to_completion()
    print(f"  {ssd.stats.writes_issued:,} writes, write amplification "
          f"{ssd.write_amplification():.2f} (no GC yet)")

    print("\n== churn: Zipf-skewed overwrites ==")
    for op, lpa in zipf_write(TraceConfig(logical_pages=pages,
                                          length=geometry.total_pages * 2)):
        ssd.write(lpa, data=b"hot update")
    ssd.run_to_completion()
    print(f"  GC erased {ssd.ftl.gc.total_erases} blocks, relocated "
          f"{ssd.ftl.gc.total_relocations} live pages")
    print(f"  write amplification now {ssd.write_amplification():.2f}")
    print(f"  mean write {ssd.mean_write_latency()*1e6:.0f} us, worst (GC pause) "
          f"{ssd.p99_style_max_write()*1e6:.0f} us")

    lo, hi, mean = ssd.ftl.wear_leveler.wear_stats()
    print(f"  wear: min={lo} max={hi} mean={mean:.1f} "
          f"({ssd.ftl.wear_leveler.total_migrations} leveling migrations)")

    print("\n== the data survived all of it ==")
    intact = sum(
        1 for lpa in range(pages)
        if ssd.ftl.read_data(lpa) in (f"record-{lpa}".encode(), b"hot update")
    )
    print(f"  {intact}/{pages} logical pages verify")
    assert intact == pages

    print("\nThis machinery runs in IceClave's secure world; the mapping table")
    print("it maintains is what in-storage programs read (but cannot write)")
    print("through the protected memory region.")


if __name__ == "__main__":
    main()
