#!/usr/bin/env python3
"""Quickstart: offload a query to an IceClave-protected SSD.

Runs the TPC-H Q1 pricing-summary query on all four execution schemes of
the paper (§6.1) and prints the Figure 11-style comparison: total time,
the load/compute/security breakdown, and IceClave's speedup over the
host-based baselines.
"""

from repro import PlatformConfig, make_platform, workload_by_name

SCHEMES = ("host", "host+sgx", "isc", "iceclave")


def main() -> None:
    # profile the workload once (it really executes the query), then let
    # each platform scale it to the paper's 32 GB dataset
    workload = workload_by_name("tpch-q1")
    profile = workload.run()
    print(f"workload: {profile.name}")
    print(f"  rows executed: {profile.rows:,}")
    print(f"  memory write ratio (Table 1): {profile.write_ratio:.2e}")
    print(f"  query answer (group sums): {profile.answer.num_rows} groups\n")

    config = PlatformConfig()  # Table 3 defaults: 8 channels, A72, 4 GB DRAM
    results = {name: make_platform(name, config).run(profile) for name in SCHEMES}

    print(f"{'scheme':>10s} {'total':>9s}  breakdown")
    for name, result in results.items():
        parts = "  ".join(f"{k}={v:.2f}s" for k, v in result.exposed().items())
        print(f"{name:>10s} {result.total_time:8.2f}s  {parts}")

    ice = results["iceclave"]
    print()
    print(f"IceClave vs Host     : {ice.speedup_over(results['host']):.2f}x faster (paper: 2.31x avg)")
    print(f"IceClave vs Host+SGX : {ice.speedup_over(results['host+sgx']):.2f}x faster (paper: 2.38x avg)")
    print(f"IceClave vs ISC      : +{ice.overhead_over(results['isc'])*100:.1f}% overhead (paper: 7.6% avg)")


if __name__ == "__main__":
    main()
