#!/usr/bin/env python3
"""Offload the paper's five TPC-H queries plus the synthetic operators.

Reproduces the Figure 11 view for the analytics workloads: all four
schemes, per-workload breakdowns, and the summary averages the paper
quotes (2.31x over Host, 7.6% over ISC).
"""

import statistics

from repro import PlatformConfig, make_platform, workload_by_name

WORKLOADS = (
    "arithmetic",
    "aggregate",
    "filter",
    "tpch-q1",
    "tpch-q3",
    "tpch-q12",
    "tpch-q14",
    "tpch-q19",
)
SCHEMES = ("host", "host+sgx", "isc", "iceclave")


def main() -> None:
    config = PlatformConfig()
    platforms = {name: make_platform(name, config) for name in SCHEMES}

    print(f"{'workload':>12s} | " + " | ".join(f"{s:>9s}" for s in SCHEMES)
          + " | ice/host  ice-vs-isc")
    print("-" * 86)
    speedups, overheads = [], []
    for name in WORKLOADS:
        profile = workload_by_name(name).run()
        results = {s: platforms[s].run(profile) for s in SCHEMES}
        ice = results["iceclave"]
        speedup = ice.speedup_over(results["host"])
        overhead = ice.overhead_over(results["isc"])
        speedups.append(speedup)
        overheads.append(overhead)
        times = " | ".join(f"{results[s].total_time:8.2f}s" for s in SCHEMES)
        print(f"{name:>12s} | {times} |   {speedup:4.2f}x     +{overhead*100:4.1f}%")

    print("-" * 86)
    print(f"{'average':>12s} | {'':>9s} | {'':>9s} | {'':>9s} | {'':>9s} "
          f"|   {statistics.mean(speedups):4.2f}x     +{statistics.mean(overheads)*100:4.1f}%")
    print("\npaper (all 11 workloads): 2.31x over Host, 2.38x over Host+SGX, "
          "+7.6% over ISC")

    # show one full breakdown, Figure 11 style
    profile = workload_by_name("tpch-q3").run()
    print("\ntpch-q3 breakdown (stacked, seconds):")
    for scheme in SCHEMES:
        result = platforms[scheme].run(profile)
        parts = "  ".join(f"{k}:{v:6.2f}" for k, v in result.exposed().items())
        print(f"  {scheme:>9s}  total={result.total_time:6.2f}  [{parts}]")


if __name__ == "__main__":
    main()
