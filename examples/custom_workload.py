#!/usr/bin/env python3
"""Extending the library: a custom in-storage workload, with attestation.

Shows the two extension points a downstream user needs:

1. subclass :class:`repro.workloads.Workload` — execute your computation,
   report its work through a :class:`TraceRecorder`, and the platform layer
   evaluates it on every scheme/sweep exactly like the paper's workloads;
2. attest the in-storage TEE before shipping it your data key
   (:mod:`repro.core.attestation`).
"""

import numpy as np

from repro import PlatformConfig, make_platform
from repro.core.attestation import AttestationDevice, AttestationError, AttestationVerifier
from repro.core.tee import Tee
from repro.query.trace import TraceRecorder
from repro.workloads.base import Workload, WorkloadProfile, register


# Decorating with @register would add this workload to the global registry
# (making it visible to `python -m repro run topk` and workload_by_name);
# we instantiate directly here to keep the example self-contained.
class TopKFrequentItems(Workload):
    """Find the k most frequent item IDs in a purchase log.

    A typical in-storage analytics kernel: stream the log, count into a
    bounded hash table, return only the top-k — tiny result, huge input.
    """

    name = "topk"
    description = "Top-k frequent items over a purchase log"
    k = 10
    distinct_items = 100_000

    def run(self) -> WorkloadProfile:
        rng = np.random.default_rng(self.seed)
        log = rng.zipf(1.4, size=self.scale_rows).astype(np.int64) % self.distinct_items
        counts = np.bincount(log, minlength=self.distinct_items)
        top = np.argsort(counts)[::-1][: self.k]

        recorder = TraceRecorder(seed=self.seed, sample_every=16)
        input_bytes = self.scale_rows * 8  # 8-byte item ids
        table_bytes = self.distinct_items * 16  # id + counter
        recorder.read_input(input_bytes)
        recorder.read_workset(table_bytes, self.scale_rows, hot_fraction=0.8)
        recorder.write_workset(table_bytes, self.scale_rows, hot_fraction=0.8)
        result_bytes = self.k * 16
        recorder.write_output(result_bytes)

        return WorkloadProfile(
            name=self.name,
            rows=self.scale_rows,
            input_bytes=input_bytes,
            result_bytes=result_bytes,
            instructions=35 * self.scale_rows,
            trace=recorder.finish(),
            answer=[(int(i), int(counts[i])) for i in top],
        )


def main() -> None:
    # -- 1. evaluate the custom workload like any paper workload ----------
    profile = TopKFrequentItems(scale_rows=300_000).run()
    print(f"top-3 items: {profile.answer[:3]}")
    print(f"write ratio: {profile.write_ratio:.3f} (hash-table updates)\n")

    config = PlatformConfig()
    for scheme in ("host", "isc", "iceclave"):
        result = make_platform(scheme, config).run(profile)
        print(f"  {scheme:>9s}: {result.total_time:7.2f}s")
    ice = make_platform("iceclave", config).run(profile)
    host = make_platform("host", config).run(profile)
    print(f"  IceClave vs Host: {ice.speedup_over(host):.2f}x "
          "(write-heavy kernels benefit least; compare Fig. 11's wordcount)\n")

    # -- 2. attest the TEE before trusting it with the data key ------------
    binary = b"\x7fTOPK" + b"\x90" * 256
    device = AttestationDevice(b"vendor-provisioned-secret!")
    verifier = AttestationVerifier(b"vendor-provisioned-secret!", device.device_id)

    tee = Tee(eid=1, tid=1, code=binary, lpas=[0])
    nonce = verifier.fresh_nonce(b"session-42")
    quote = device.quote(tee, nonce)
    verifier.verify(quote, expected_code=binary, nonce=nonce)
    print("attestation: TEE measurement verified — safe to send the data key")

    trojaned = Tee(eid=2, tid=2, code=b"\x7fEVIL" + b"\x90" * 256, lpas=[0])
    # one challenge per handshake: re-deriving a nonce from the same entropy
    # is itself refused by the replay-hardened verifier
    challenge = verifier.fresh_nonce(b"session-43")
    bad_quote = device.quote(trojaned, challenge)
    try:
        verifier.verify(bad_quote, expected_code=binary, nonce=challenge)
    except AttestationError as err:
        print(f"attestation: trojaned TEE rejected ({err})")


if __name__ == "__main__":
    main()
