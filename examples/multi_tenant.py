#!/usr/bin/env python3
"""Multi-tenant in-storage computing: collocated IceClave TEEs (§6.8).

Reproduces the Figure 17/18 experiments: the TPC-C instance collocated
with each other workload (two tenants), then a four-tenant mix. Slowdowns
are relative to each instance running alone.
"""

import statistics

from repro import MultiTenantIceClave, PlatformConfig, workload_by_name

PARTNERS = ("tpch-q1", "filter", "aggregate", "wordcount", "tpcb", "tpch-q3")
QUAD = ("tpcc", "tpch-q1", "filter", "wordcount")


def main() -> None:
    config = PlatformConfig()
    mt = MultiTenantIceClave(config)
    tpcc = workload_by_name("tpcc").run()

    print("== Figure 17: TPC-C collocated with one other instance ==")
    print(f"{'pair':>22s} {'tpcc slowdown':>14s} {'partner slowdown':>17s}")
    for partner_name in PARTNERS:
        partner = workload_by_name(partner_name).run()
        results = mt.run([tpcc, partner])
        slow = [100 * (r.stats["slowdown"] - 1) for r in results]
        print(f"{'tpcc + ' + partner_name:>22s} {slow[0]:13.1f}% {slow[1]:16.1f}%")
    print("paper: 6.1%-15.7% degradation for two collocated instances\n")

    print("== Figure 18: four collocated instances ==")
    profiles = [workload_by_name(n).run() for n in QUAD]
    results = mt.run(profiles)
    for r in results:
        print(f"  {r.workload:>10s}: {100*(r.stats['slowdown']-1):5.1f}% slower "
              f"(shared mapping-cache miss rate {r.stats['shared_miss_rate']*100:.3f}%)")
    avg = statistics.mean(r.stats["slowdown"] - 1 for r in results)
    print(f"  average: {avg*100:.1f}% (paper: 21.4%)")

    demand = results[0].stats["bandwidth_demand"]
    print(f"\naggregate internal-bandwidth demand: {demand:.2f}x of one SSD "
          f"({'saturated' if demand > 1 else 'not saturated'})")


if __name__ == "__main__":
    main()
